#include "net/ingest_client.h"

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::net {

namespace {

/**
 * Thrown when reconnectAndResume exhausts ReconnectPolicy::maxAttempts.
 * Distinct so the retry wrappers can tell "the outage outlasted the
 * policy" (propagate) from "the connection just died" (resume again);
 * still a NazarError so callers outside this file see a normal
 * connection failure.
 */
class ReconnectFailed : public NazarError
{
  public:
    explicit ReconnectFailed(const std::string &what) : NazarError(what)
    {
    }
};

void
sleepMs(double ms)
{
    if (ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
}

} // namespace

IngestClient::IngestClient(uint16_t port, const FaultConfig &chaos,
                           const std::string &client_name,
                           const ReconnectPolicy &reconnect)
    : chaos_(chaos),
      chaosOn_(chaos.dropProb > 0.0 || chaos.dupProb > 0.0),
      rng_(chaos.seed), port_(port), clientName_(client_name),
      policy_(reconnect), sessionOn_(reconnect.enabled)
{
    int attempt = 0;
    for (;;) {
        try {
            stream_ = TcpStream::connect(port_);
            if (policy_.recvTimeoutMs > 0)
                stream_.setRecvTimeout(policy_.recvTimeoutMs);
            handshake(false);
            return;
        } catch (const NazarError &) {
            stream_ = TcpStream();
            if (!sessionOn_ || ++attempt >= policy_.maxAttempts)
                throw;
            sleepMs(policy_.backoffBeforeAttemptMs(attempt));
        }
    }
}

void
IngestClient::handshake(bool want_resume)
{
    WireHello hello;
    hello.clientName = clientName_;
    hello.wantResume = want_resume;
    NAZAR_CHECK(stream_.sendFrame(MsgType::kHello, encodeHello(hello)),
                "ingest client: server closed during handshake");
    Frame reply = expectFrame();
    NAZAR_CHECK(reply.type == MsgType::kHelloAck,
                "ingest client: expected kHelloAck, got type " +
                    std::to_string(static_cast<int>(reply.type)));
    helloAck_ = decodeHelloAck(reply.payload);
    NAZAR_CHECK(helloAck_.protoVersion == kProtocolVersion,
                "ingest client: protocol version mismatch (server " +
                    std::to_string(helloAck_.protoVersion) + ", client " +
                    std::to_string(kProtocolVersion) + ")");
}

bool
IngestClient::sendIngest(const WireIngest &m)
{
    if (chaosOn_ && chaos_.dropProb > 0.0) {
        // A "lost send": retry up to the attempt cap, then give up —
        // same shape as Channel::transmit, but over a real socket the
        // only observable outcome is sent vs never-sent.
        int attempt = 1;
        while (rng_.bernoulli(chaos_.dropProb)) {
            if (attempt >= chaos_.maxAttempts) {
                ++stats_.gaveUp;
                obs::Registry::global()
                    .counter("net.client.gave_up")
                    .add(1);
                return false;
            }
            ++attempt;
            ++stats_.retries;
        }
    }
    // The duplicate draw happens HERE, before any send: the chaos RNG
    // must consume the same draws in the same order whether or not a
    // send throws mid-message (a crashed-server run and an uncrashed
    // run then give up / duplicate the exact same messages, which is
    // what lets tests compare a crash run against an oracle). No RNG
    // is consumed between this draw and the sends, so the wire bytes
    // of a fault-free run are unchanged.
    bool dup = chaosOn_ && chaos_.dupProb > 0.0 &&
               rng_.bernoulli(chaos_.dupProb);
    if (dup)
        ++stats_.duplicates;
    Pending *pending = nullptr;
    if (sessionOn_) {
        // Remember the decoded message before touching the wire: if
        // the send fails mid-frame the resume path retransmits from
        // here. An already-present key is an upstream (channel-level)
        // re-delivery of the same (device, seq) — the server will
        // dedup-reject it, so it owes one more rejected ack.
        auto [it, inserted] =
            pending_.try_emplace({m.device, m.seq}, Pending{});
        pending = &it->second;
        if (inserted) {
            pending->msg = m;
            pending->order = nextPendingOrder_++;
        } else {
            ++pending->targetRejects;
        }
        if (dup) {
            // Register the duplicate's owed rejection up front: even
            // if the copy never reaches the wire (crash mid-message),
            // the resume path materializes it as an owed-reject copy,
            // keeping acksRejected == duplicates across restarts.
            ++pending->targetRejects;
        }
        ++stats_.sent;
    }
    try {
        // Encode only after the drop decision: a given-up message must
        // not advance the string dictionary, or the server's mirror
        // would fall out of lockstep.
        std::string payload;
        if (obs::enabled() && obs::tracing()) {
            // Mint this upload's root context; its ids ride the wire so
            // the server's stage spans join the same trace. The root
            // span itself is recorded when the ack closes it (onAck).
            obs::TraceContext ctx = obs::newTraceContext();
            WireIngest traced = m;
            traced.traceId = ctx.traceId;
            traced.spanId = ctx.spanId;
            static obs::SpanSite encodeSite("net.client.encode");
            auto t0 = std::chrono::steady_clock::now();
            payload = encodeIngest(traced, dict_);
            obs::recordSpan(encodeSite, t0,
                            std::chrono::steady_clock::now(), ctx);
            pendingTraces_[{m.device, m.seq}] = {ctx.traceId,
                                                 ctx.spanId, t0};
        } else {
            payload = encodeIngest(m, dict_);
        }
        std::string frame = encodeFrame(MsgType::kIngest, payload);
        NAZAR_CHECK(stream_.sendBytes(frame),
                    "ingest client: server closed during send");
        if (!sessionOn_)
            ++stats_.sent;
        ++stats_.framesSent;
        ++outstanding_;
        if (pending)
            ++pending->copies;
        if (dup) {
            // Retransmission whose ack was lost: byte-identical copy;
            // the server must dedup it (its ack comes back rejected).
            NAZAR_CHECK(stream_.sendBytes(frame),
                        "ingest client: server closed during send");
            ++stats_.framesSent;
            ++outstanding_;
            if (pending)
                ++pending->copies;
        }
        pumpAcks();
    } catch (const ReconnectFailed &) {
        throw;
    } catch (const NazarError &) {
        if (!sessionOn_)
            throw;
        reconnectAndResume();
    }
    return true;
}

void
IngestClient::onAck(const Frame &frame)
{
    if (frame.type == MsgType::kBusy) {
        // Advisory only: the reader has stopped draining; TCP flow
        // control is already pushing back. Tally and move on.
        ++stats_.busySeen;
        return;
    }
    NAZAR_CHECK(frame.type == MsgType::kAck,
                "ingest client: expected kAck, got type " +
                    std::to_string(static_cast<int>(frame.type)));
    WireAck ack = decodeAck(frame.payload);
    NAZAR_CHECK(outstanding_ > 0,
                "ingest client: unsolicited ack for device " +
                    std::to_string(ack.device));
    --outstanding_;
    if (!sessionOn_) {
        if (ack.accepted)
            ++stats_.acksAccepted;
        else
            ++stats_.acksRejected;
    } else {
        auto it = pending_.find({ack.device, ack.seq});
        if (it == pending_.end()) {
            // Ack for an entry already settled via resume — absorb.
            ++stats_.resentRejected;
        } else {
            Pending &p = it->second;
            --p.copies;
            if (!p.acceptedCredited) {
                // First settlement is the accepted credit even when
                // the wire flag says rejected: a rejected first ack
                // means the ingest landed on a path whose ack was
                // lost (crash, or the old connection's queue draining
                // past the resume snapshot).
                p.acceptedCredited = true;
                ++stats_.acksAccepted;
            } else if (!ack.accepted &&
                       p.rejectsCredited < p.targetRejects) {
                ++p.rejectsCredited;
                ++stats_.acksRejected;
            } else {
                ++stats_.resentRejected;
            }
            if (p.copies <= 0 && p.acceptedCredited &&
                p.rejectsCredited >= p.targetRejects)
                pending_.erase(it);
        }
    }
    if (!pendingTraces_.empty()) {
        auto it = pendingTraces_.find({ack.device, ack.seq});
        if (it != pendingTraces_.end()) {
            // Close the upload's root span: send → ack, with the id
            // the wire carried so server-side children parent to it.
            // (A duplicate's second ack finds no entry and is skipped.)
            static obs::SpanSite rootSite("net.client.ingest");
            obs::recordSpan(
                rootSite, it->second.start,
                std::chrono::steady_clock::now(),
                obs::TraceContext{it->second.traceId, 0},
                it->second.spanId);
            pendingTraces_.erase(it);
        }
    }
    if (ackObserver_)
        ackObserver_(ack);
}

void
IngestClient::pumpAcks()
{
    while (outstanding_ > 0) {
        auto frame = stream_.tryRecvFrame();
        if (!frame.has_value())
            return;
        onAck(*frame);
    }
}

void
IngestClient::drainAcks()
{
    while (outstanding_ > 0) {
        try {
            auto frame = stream_.recvFrame();
            NAZAR_CHECK(frame.has_value(),
                        "ingest client: EOF with " +
                            std::to_string(outstanding_) +
                            " acks outstanding");
            onAck(*frame);
        } catch (const ReconnectFailed &) {
            throw;
        } catch (const NazarError &) {
            if (!sessionOn_)
                throw;
            reconnectAndResume();
        }
    }
}

Frame
IngestClient::expectFrame()
{
    for (;;) {
        auto frame = stream_.recvFrame();
        NAZAR_CHECK(frame.has_value(),
                    "ingest client: unexpected EOF from server");
        if (frame->type == MsgType::kBusy) {
            ++stats_.busySeen;
            continue;
        }
        return std::move(*frame);
    }
}

void
IngestClient::reconnectAndResume()
{
    NAZAR_ASSERT(sessionOn_,
                 "reconnectAndResume without a reconnect policy");
    for (int attempt = 1;; ++attempt) {
        if (attempt > policy_.maxAttempts)
            throw ReconnectFailed(
                "ingest client: reconnect gave up after " +
                std::to_string(policy_.maxAttempts) + " attempts");
        sleepMs(policy_.backoffBeforeAttemptMs(attempt));
        try {
            stream_ = TcpStream::connect(port_);
            if (policy_.recvTimeoutMs > 0)
                stream_.setRecvTimeout(policy_.recvTimeoutMs);
            handshake(true);
            // The old connection's acks are gone; what landed is
            // re-derived from the resume block, so outstanding
            // bookkeeping restarts from the retransmits alone. The
            // server-side dictionary mirror is fresh too.
            dict_ = StringDict();
            pendingTraces_.clear();
            outstanding_ = 0;
            settleAndRetransmit();
            ++stats_.reconnects;
            obs::Registry::global()
                .counter("net.client.reconnects")
                .add(1);
            return;
        } catch (const NazarError &) {
            stream_ = TcpStream();
        }
    }
}

void
IngestClient::settleAndRetransmit()
{
    std::map<int64_t, uint64_t> high;
    for (const auto &[device, hw] : helloAck_.resumeHighWater)
        high[device] = hw;
    // Pass 1: settle everything the server already accounts for. A
    // seq at or below the device's high water landed (or was dedup-
    // rejected) before the crash; any rejections still owed for its
    // duplicate copies are credited here — the acks for them died
    // with the old connection.
    for (auto it = pending_.begin(); it != pending_.end();) {
        const auto &[device, seq] = it->first;
        Pending &p = it->second;
        auto hit = high.find(device);
        if (hit != high.end() && seq <= hit->second) {
            if (!p.acceptedCredited) {
                p.acceptedCredited = true;
                ++stats_.acksAccepted;
                ++stats_.resumedLanded;
            }
            stats_.acksRejected +=
                static_cast<uint64_t>(p.targetRejects -
                                      p.rejectsCredited);
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
    // Pass 2: retransmit the rest in ORIGINAL SEND ORDER (the server
    // commits FIFO, so the surviving entries are a contiguous suffix
    // of the send order; replaying them in that order reproduces the
    // exact global arrival sequence the uncrashed run would have had,
    // which keeps a remote Runner's recovered state row-identical to
    // the in-process one). One copy earns the accepted credit (or a
    // dedup rejection if the old connection's queue landed it after
    // the resume snapshot — onAck treats a rejected first ack as the
    // accepted credit), plus one copy per rejection still owed to a
    // duplicate.
    std::vector<Pending *> rest;
    rest.reserve(pending_.size());
    for (auto &[key, p] : pending_)
        rest.push_back(&p);
    std::sort(rest.begin(), rest.end(),
              [](const Pending *a, const Pending *b) {
                  return a->order < b->order;
              });
    uint64_t resentHere = 0;
    for (Pending *p : rest) {
        int copies = (p->acceptedCredited ? 0 : 1) +
                     (p->targetRejects - p->rejectsCredited);
        p->copies = copies;
        if (copies == 0)
            continue;
        std::string frame = encodeFrame(
            MsgType::kIngest, encodeIngest(p->msg, dict_));
        for (int i = 0; i < copies; ++i) {
            NAZAR_CHECK(stream_.sendBytes(frame),
                        "ingest client: server closed during resume");
            ++outstanding_;
            ++resentHere;
        }
    }
    stats_.resent += resentHere;
    if (resentHere > 0)
        obs::Registry::global()
            .counter("net.client.resent")
            .add(static_cast<double>(resentHere));
}

RemoteCycle
IngestClient::requestCycle(const std::string &clean_patch_text)
{
    for (;;) {
        try {
            if (sessionOn_) {
                // Settle ingest acks before the request goes out: if
                // a resume fires inside this drain, the new server
                // must still receive the cycle request afterwards.
                drainAcks();
            }
            NAZAR_CHECK(
                stream_.sendFrame(MsgType::kCycleRequest,
                                  clean_patch_text),
                "ingest client: server closed during cycle request");
            // The committer processes this connection's frames in
            // order, so every ack for the ingests above arrives
            // before kCycleDone.
            drainAcks();
            Frame frame = expectFrame();
            NAZAR_CHECK(
                frame.type == MsgType::kCycleDone,
                "ingest client: expected kCycleDone, got type " +
                    std::to_string(static_cast<int>(frame.type)));
            RemoteCycle cycle;
            cycle.done = decodeCycleDone(frame.payload);
            cycle.versionTexts.reserve(cycle.done.versionCount);
            for (uint32_t i = 0; i < cycle.done.versionCount; ++i) {
                Frame push = expectFrame();
                NAZAR_CHECK(
                    push.type == MsgType::kVersionPush,
                    "ingest client: expected kVersionPush, got type " +
                        std::to_string(static_cast<int>(push.type)));
                cycle.versionTexts.push_back(std::move(push.payload));
            }
            return cycle;
        } catch (const ReconnectFailed &) {
            throw;
        } catch (const NazarError &) {
            if (!sessionOn_)
                throw;
            // At-least-once: a crash between the server committing
            // the cycle and the reply landing makes the retry run a
            // second cycle (see the header note).
            reconnectAndResume();
        }
    }
}

void
IngestClient::requestFlush()
{
    for (;;) {
        try {
            if (sessionOn_)
                drainAcks();
            NAZAR_CHECK(
                stream_.sendFrame(MsgType::kFlushRequest,
                                  std::string()),
                "ingest client: server closed during flush request");
            drainAcks();
            Frame frame = expectFrame();
            NAZAR_CHECK(
                frame.type == MsgType::kFlushDone,
                "ingest client: expected kFlushDone, got type " +
                    std::to_string(static_cast<int>(frame.type)));
            return;
        } catch (const ReconnectFailed &) {
            throw;
        } catch (const NazarError &) {
            if (!sessionOn_)
                throw;
            reconnectAndResume();
        }
    }
}

WireByeAck
IngestClient::bye()
{
    for (;;) {
        try {
            if (sessionOn_)
                drainAcks();
            NAZAR_CHECK(stream_.sendFrame(MsgType::kBye, std::string()),
                        "ingest client: server closed during bye");
            drainAcks();
            Frame frame = expectFrame();
            NAZAR_CHECK(frame.type == MsgType::kByeAck,
                        "ingest client: expected kByeAck, got type " +
                            std::to_string(static_cast<int>(frame.type)));
            WireByeAck ack = decodeByeAck(frame.payload);
            stream_.shutdownWrite();
            auto eof = stream_.recvFrame();
            NAZAR_CHECK(!eof.has_value(),
                        "ingest client: unexpected frame after kByeAck");
            return ack;
        } catch (const ReconnectFailed &) {
            throw;
        } catch (const NazarError &) {
            if (!sessionOn_)
                throw;
            reconnectAndResume();
        }
    }
}

} // namespace nazar::net
