#include "net/ingest_client.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::net {

IngestClient::IngestClient(uint16_t port, const FaultConfig &chaos,
                           const std::string &client_name)
    : stream_(TcpStream::connect(port)), chaos_(chaos),
      chaosOn_(chaos.dropProb > 0.0 || chaos.dupProb > 0.0),
      rng_(chaos.seed)
{
    WireHello hello;
    hello.clientName = client_name;
    NAZAR_CHECK(stream_.sendFrame(MsgType::kHello, encodeHello(hello)),
                "ingest client: server closed during handshake");
    Frame reply = expectFrame();
    NAZAR_CHECK(reply.type == MsgType::kHelloAck,
                "ingest client: expected kHelloAck, got type " +
                    std::to_string(static_cast<int>(reply.type)));
    helloAck_ = decodeHelloAck(reply.payload);
    NAZAR_CHECK(helloAck_.protoVersion == kProtocolVersion,
                "ingest client: protocol version mismatch (server " +
                    std::to_string(helloAck_.protoVersion) + ", client " +
                    std::to_string(kProtocolVersion) + ")");
}

bool
IngestClient::sendIngest(const WireIngest &m)
{
    if (chaosOn_ && chaos_.dropProb > 0.0) {
        // A "lost send": retry up to the attempt cap, then give up —
        // same shape as Channel::transmit, but over a real socket the
        // only observable outcome is sent vs never-sent.
        int attempt = 1;
        while (rng_.bernoulli(chaos_.dropProb)) {
            if (attempt >= chaos_.maxAttempts) {
                ++stats_.gaveUp;
                obs::Registry::global()
                    .counter("net.client.gave_up")
                    .add(1);
                return false;
            }
            ++attempt;
            ++stats_.retries;
        }
    }
    // Encode only after the drop decision: a given-up message must
    // not advance the string dictionary, or the server's mirror
    // would fall out of lockstep.
    std::string payload;
    if (obs::enabled() && obs::tracing()) {
        // Mint this upload's root context; its ids ride the wire so
        // the server's stage spans join the same trace. The root span
        // itself is recorded when the ack closes it (see onAck).
        obs::TraceContext ctx = obs::newTraceContext();
        WireIngest traced = m;
        traced.traceId = ctx.traceId;
        traced.spanId = ctx.spanId;
        static obs::SpanSite encodeSite("net.client.encode");
        auto t0 = std::chrono::steady_clock::now();
        payload = encodeIngest(traced, dict_);
        obs::recordSpan(encodeSite, t0,
                        std::chrono::steady_clock::now(), ctx);
        pendingTraces_[{m.device, m.seq}] = {ctx.traceId, ctx.spanId,
                                             t0};
    } else {
        payload = encodeIngest(m, dict_);
    }
    std::string frame = encodeFrame(MsgType::kIngest, payload);
    NAZAR_CHECK(stream_.sendBytes(frame),
                "ingest client: server closed during send");
    ++stats_.sent;
    ++stats_.framesSent;
    ++outstanding_;
    if (chaosOn_ && chaos_.dupProb > 0.0 &&
        rng_.bernoulli(chaos_.dupProb)) {
        // Retransmission whose ack was lost: byte-identical copy;
        // the server must dedup it (its ack comes back rejected).
        NAZAR_CHECK(stream_.sendBytes(frame),
                    "ingest client: server closed during send");
        ++stats_.duplicates;
        ++stats_.framesSent;
        ++outstanding_;
    }
    pumpAcks();
    return true;
}

void
IngestClient::onAck(const Frame &frame)
{
    NAZAR_CHECK(frame.type == MsgType::kAck,
                "ingest client: expected kAck, got type " +
                    std::to_string(static_cast<int>(frame.type)));
    WireAck ack = decodeAck(frame.payload);
    NAZAR_CHECK(outstanding_ > 0,
                "ingest client: unsolicited ack for device " +
                    std::to_string(ack.device));
    --outstanding_;
    if (ack.accepted)
        ++stats_.acksAccepted;
    else
        ++stats_.acksRejected;
    if (!pendingTraces_.empty()) {
        auto it = pendingTraces_.find({ack.device, ack.seq});
        if (it != pendingTraces_.end()) {
            // Close the upload's root span: send → ack, with the id
            // the wire carried so server-side children parent to it.
            // (A duplicate's second ack finds no entry and is skipped.)
            static obs::SpanSite rootSite("net.client.ingest");
            obs::recordSpan(
                rootSite, it->second.start,
                std::chrono::steady_clock::now(),
                obs::TraceContext{it->second.traceId, 0},
                it->second.spanId);
            pendingTraces_.erase(it);
        }
    }
    if (ackObserver_)
        ackObserver_(ack);
}

void
IngestClient::pumpAcks()
{
    while (outstanding_ > 0) {
        auto frame = stream_.tryRecvFrame();
        if (!frame.has_value())
            return;
        onAck(*frame);
    }
}

void
IngestClient::drainAcks()
{
    while (outstanding_ > 0) {
        auto frame = stream_.recvFrame();
        NAZAR_CHECK(frame.has_value(),
                    "ingest client: EOF with " +
                        std::to_string(outstanding_) +
                        " acks outstanding");
        onAck(*frame);
    }
}

Frame
IngestClient::expectFrame()
{
    auto frame = stream_.recvFrame();
    NAZAR_CHECK(frame.has_value(),
                "ingest client: unexpected EOF from server");
    return std::move(*frame);
}

RemoteCycle
IngestClient::requestCycle(const std::string &clean_patch_text)
{
    NAZAR_CHECK(stream_.sendFrame(MsgType::kCycleRequest,
                                  clean_patch_text),
                "ingest client: server closed during cycle request");
    // The committer processes this connection's frames in order, so
    // every ack for the ingests above arrives before kCycleDone.
    drainAcks();
    Frame frame = expectFrame();
    NAZAR_CHECK(frame.type == MsgType::kCycleDone,
                "ingest client: expected kCycleDone, got type " +
                    std::to_string(static_cast<int>(frame.type)));
    RemoteCycle cycle;
    cycle.done = decodeCycleDone(frame.payload);
    cycle.versionTexts.reserve(cycle.done.versionCount);
    for (uint32_t i = 0; i < cycle.done.versionCount; ++i) {
        Frame push = expectFrame();
        NAZAR_CHECK(push.type == MsgType::kVersionPush,
                    "ingest client: expected kVersionPush, got type " +
                        std::to_string(static_cast<int>(push.type)));
        cycle.versionTexts.push_back(std::move(push.payload));
    }
    return cycle;
}

void
IngestClient::requestFlush()
{
    NAZAR_CHECK(stream_.sendFrame(MsgType::kFlushRequest, std::string()),
                "ingest client: server closed during flush request");
    drainAcks();
    Frame frame = expectFrame();
    NAZAR_CHECK(frame.type == MsgType::kFlushDone,
                "ingest client: expected kFlushDone, got type " +
                    std::to_string(static_cast<int>(frame.type)));
}

WireByeAck
IngestClient::bye()
{
    NAZAR_CHECK(stream_.sendFrame(MsgType::kBye, std::string()),
                "ingest client: server closed during bye");
    drainAcks();
    Frame frame = expectFrame();
    NAZAR_CHECK(frame.type == MsgType::kByeAck,
                "ingest client: expected kByeAck, got type " +
                    std::to_string(static_cast<int>(frame.type)));
    WireByeAck ack = decodeByeAck(frame.payload);
    stream_.shutdownWrite();
    auto eof = stream_.recvFrame();
    NAZAR_CHECK(!eof.has_value(),
                "ingest client: unexpected frame after kByeAck");
    return ack;
}

} // namespace nazar::net
