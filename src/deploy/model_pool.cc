/**
 * @file
 * Implementation of the consolidating model pool.
 */
#include "model_pool.h"

#include "common/error.h"

namespace nazar::deploy {

size_t
ModelPool::install(ModelVersion version)
{
    NAZAR_CHECK(!version.cause.empty(),
                "the clean model is managed outside the pool");
    size_t evicted = 0;

    // Rule 1 + 2: drop versions with the identical cause, and older
    // versions whose cause is an attribute-superset of the incoming
    // one (the incoming version covers them).
    for (auto it = versions_.begin(); it != versions_.end();) {
        bool same = it->cause == version.cause;
        bool covered = version.cause.isProperSubsetOf(it->cause);
        if (same || covered) {
            it = versions_.erase(it);
            ++evicted;
        } else {
            ++it;
        }
    }

    // Most recently updated at the front.
    versions_.push_front(std::move(version));

    // Rule 3: LRU eviction beyond capacity.
    while (capacity_ > 0 && versions_.size() > capacity_) {
        versions_.pop_back();
        ++evicted;
    }
    return evicted;
}

const ModelVersion *
ModelPool::findByCause(const rca::AttributeSet &cause) const
{
    for (const auto &v : versions_)
        if (v.cause == cause)
            return &v;
    return nullptr;
}

const ModelVersion *
ModelPool::findById(int64_t id) const
{
    for (const auto &v : versions_)
        if (v.id == id)
            return &v;
    return nullptr;
}

} // namespace nazar::deploy
