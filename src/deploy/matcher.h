/**
 * @file
 * On-device model-version selection (paper §3.4, "Picking which
 * version to use for inference").
 *
 * For each input the device assembles its current context attributes
 * (weather, location, its own id/model) and picks, among pool versions
 * whose cause is satisfied by the context, the one with:
 *   1. the most matching attributes (most specific cause),
 *   2. then the most recent update,
 *   3. then the highest risk ratio.
 * If no version matches, the clean model is used. Selection runs
 * entirely on the device — no cloud involvement.
 */
#ifndef NAZAR_DEPLOY_MATCHER_H
#define NAZAR_DEPLOY_MATCHER_H

#include "deploy/model_pool.h"

namespace nazar::deploy {

/**
 * Pick the best version for a context; nullptr means "use the clean
 * model".
 *
 * @param pool    The device's model pool.
 * @param context Current input metadata as an attribute set.
 */
const ModelVersion *selectVersion(const ModelPool &pool,
                                  const rca::AttributeSet &context);

/**
 * True when a version's cause is satisfied by the context (every cause
 * attribute appears in the context).
 */
bool causeMatchesContext(const rca::AttributeSet &cause,
                         const rca::AttributeSet &context);

} // namespace nazar::deploy

#endif // NAZAR_DEPLOY_MATCHER_H
