/**
 * @file
 * On-device model pool with the paper's consolidation rules (§3.4):
 *
 *  1. Same-cause replacement: a new version whose cause exactly
 *     matches an existing one replaces that version (not the LRU
 *     tail).
 *  2. Superset eviction: a new version whose cause *covers* an older
 *     version's cause (its attribute set is a proper subset, i.e. it
 *     matches strictly more inputs) evicts that older version — the
 *     model-pool analog of set reduction.
 *  3. LRU: beyond those, when the pool exceeds its capacity the least
 *     recently *updated* version is evicted.
 *
 * The clean (base) model lives outside the pool and is never evicted.
 */
#ifndef NAZAR_DEPLOY_MODEL_POOL_H
#define NAZAR_DEPLOY_MODEL_POOL_H

#include <list>
#include <optional>

#include "deploy/model_version.h"

namespace nazar::deploy {

/** LRU-consolidated set of adapted model versions. */
class ModelPool
{
  public:
    /** @param capacity Max stored versions; 0 means unbounded. */
    explicit ModelPool(size_t capacity = 0) : capacity_(capacity) {}

    /**
     * Install a version, applying the consolidation rules. Returns the
     * number of versions evicted.
     */
    size_t install(ModelVersion version);

    /** Number of stored versions. */
    size_t size() const { return versions_.size(); }

    size_t capacity() const { return capacity_; }

    /** Versions in most-recently-updated-first order. */
    const std::list<ModelVersion> &versions() const { return versions_; }

    /** Look up a version by exact cause. */
    const ModelVersion *findByCause(const rca::AttributeSet &cause) const;

    /** Look up a version by id. */
    const ModelVersion *findById(int64_t id) const;

    /** Remove everything. */
    void clear() { versions_.clear(); }

  private:
    size_t capacity_;
    /** Most recently updated at the front. */
    std::list<ModelVersion> versions_;
};

} // namespace nazar::deploy

#endif // NAZAR_DEPLOY_MODEL_POOL_H
