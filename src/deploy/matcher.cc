/**
 * @file
 * Implementation of on-device version selection.
 */
#include "matcher.h"

namespace nazar::deploy {

bool
causeMatchesContext(const rca::AttributeSet &cause,
                    const rca::AttributeSet &context)
{
    return cause.isSubsetOf(context);
}

const ModelVersion *
selectVersion(const ModelPool &pool, const rca::AttributeSet &context)
{
    const ModelVersion *best = nullptr;
    for (const auto &v : pool.versions()) {
        if (!causeMatchesContext(v.cause, context))
            continue;
        if (best == nullptr) {
            best = &v;
            continue;
        }
        if (v.cause.size() != best->cause.size()) {
            if (v.cause.size() > best->cause.size())
                best = &v;
            continue;
        }
        if (v.updatedAt != best->updatedAt) {
            if (v.updatedAt > best->updatedAt)
                best = &v;
            continue;
        }
        if (v.riskRatio > best->riskRatio)
            best = &v;
    }
    return best;
}

} // namespace nazar::deploy
