/**
 * @file
 * Deployable model versions (paper §3.4, "Consolidating model
 * versions").
 *
 * Nazar adapts only BatchNorm layers, so a model version is a BnPatch
 * tagged with the root cause it was adapted to, the cause's risk-ratio
 * rank (used for tie-breaking during on-device selection) and a
 * logical update timestamp (used by the LRU consolidation).
 */
#ifndef NAZAR_DEPLOY_MODEL_VERSION_H
#define NAZAR_DEPLOY_MODEL_VERSION_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nn/bn_patch.h"
#include "rca/attribute_set.h"

namespace nazar::deploy {

/** One deployable adapted-model version. */
struct ModelVersion
{
    int64_t id = 0;          ///< Unique version id (cloud-assigned).
    rca::AttributeSet cause; ///< Root cause; empty == the clean model.
    double riskRatio = 0.0;  ///< Rank of the cause at adaptation time.
    nn::BnPatch patch;       ///< The BN delta to install.
    int64_t updatedAt = 0;   ///< Logical update time (monotonic).

    bool isClean() const { return cause.empty(); }

    /** Display string, e.g. "v7 {weather=snow} rr=3.2". */
    std::string toString() const;

    /**
     * Serialize the whole version (metadata + patch) to one text
     * stream at full double precision, so save/load round-trips are
     * bit-exact. The durability layer persists versions this way.
     */
    void save(std::ostream &os) const;

    /** Deserialize; throws NazarError on malformed data. */
    static ModelVersion load(std::istream &is);
};

/**
 * Typed one-line Value encoding ("n:", "i:42", "d:2.5", "b:true",
 * "s:snow") shared by the registry's metadata blobs and
 * ModelVersion::save. Doubles are encoded at full precision, so
 * decode(encode(v)) == v bit-exactly for finite values.
 */
std::string encodeValueLine(const driftlog::Value &v);

/** Inverse of encodeValueLine; throws NazarError on malformed input. */
driftlog::Value decodeValueLine(const std::string &s);

} // namespace nazar::deploy

#endif // NAZAR_DEPLOY_MODEL_VERSION_H
