/**
 * @file
 * Deployable model versions (paper §3.4, "Consolidating model
 * versions").
 *
 * Nazar adapts only BatchNorm layers, so a model version is a BnPatch
 * tagged with the root cause it was adapted to, the cause's risk-ratio
 * rank (used for tie-breaking during on-device selection) and a
 * logical update timestamp (used by the LRU consolidation).
 */
#ifndef NAZAR_DEPLOY_MODEL_VERSION_H
#define NAZAR_DEPLOY_MODEL_VERSION_H

#include <cstdint>
#include <string>

#include "nn/bn_patch.h"
#include "rca/attribute_set.h"

namespace nazar::deploy {

/** One deployable adapted-model version. */
struct ModelVersion
{
    int64_t id = 0;          ///< Unique version id (cloud-assigned).
    rca::AttributeSet cause; ///< Root cause; empty == the clean model.
    double riskRatio = 0.0;  ///< Rank of the cause at adaptation time.
    nn::BnPatch patch;       ///< The BN delta to install.
    int64_t updatedAt = 0;   ///< Logical update time (monotonic).

    bool isClean() const { return cause.empty(); }

    /** Display string, e.g. "v7 {weather=snow} rr=3.2". */
    std::string toString() const;
};

} // namespace nazar::deploy

#endif // NAZAR_DEPLOY_MODEL_VERSION_H
