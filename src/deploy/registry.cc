/**
 * @file
 * Implementation of the blob store and model registry.
 */
#include "registry.h"

#include <sstream>

#include "common/error.h"

namespace nazar::deploy {

void
BlobStore::put(const std::string &key, std::string data)
{
    NAZAR_CHECK(!key.empty(), "blob key must not be empty");
    blobs_[key] = std::move(data);
}

const std::string &
BlobStore::get(const std::string &key) const
{
    auto it = blobs_.find(key);
    NAZAR_CHECK(it != blobs_.end(), "no such blob: " + key);
    return it->second;
}

bool
BlobStore::contains(const std::string &key) const
{
    return blobs_.count(key) > 0;
}

bool
BlobStore::remove(const std::string &key)
{
    return blobs_.erase(key) > 0;
}

std::vector<std::string>
BlobStore::list(const std::string &prefix) const
{
    std::vector<std::string> keys;
    for (const auto &[key, blob] : blobs_)
        if (key.compare(0, prefix.size(), prefix) == 0)
            keys.push_back(key);
    return keys;
}

size_t
BlobStore::totalBytes() const
{
    size_t total = 0;
    for (const auto &[key, blob] : blobs_)
        total += blob.size();
    return total;
}

std::string
ModelRegistry::metaKey(int64_t id)
{
    return "versions/" + std::to_string(id) + "/meta";
}

std::string
ModelRegistry::patchKey(int64_t id)
{
    return "versions/" + std::to_string(id) + "/patch";
}

int64_t
ModelRegistry::publish(ModelVersion version)
{
    if (version.id == 0)
        version.id = nextId_;
    nextId_ = std::max(nextId_, version.id + 1);

    std::ostringstream meta;
    meta << "nazar-version 1\n";
    meta << version.id << " " << version.riskRatio << " "
         << version.updatedAt << "\n";
    meta << version.cause.size() << "\n";
    for (const auto &attr : version.cause.attributes())
        meta << attr.column << "\n"
             << encodeValueLine(attr.value) << "\n";
    store_->put(metaKey(version.id), meta.str());

    std::ostringstream patch;
    version.patch.save(patch);
    store_->put(patchKey(version.id), patch.str());
    return version.id;
}

ModelVersion
ModelRegistry::fetch(int64_t id) const
{
    std::istringstream meta(store_->get(metaKey(id)));
    std::string magic;
    int format = 0;
    meta >> magic >> format;
    NAZAR_CHECK(magic == "nazar-version" && format == 1,
                "malformed version metadata");

    ModelVersion version;
    size_t attr_count = 0;
    meta >> version.id >> version.riskRatio >> version.updatedAt >>
        attr_count;
    meta.ignore(); // end-of-line
    std::vector<rca::Attribute> attrs;
    for (size_t i = 0; i < attr_count; ++i) {
        std::string column, encoded;
        NAZAR_CHECK(static_cast<bool>(std::getline(meta, column)) &&
                        static_cast<bool>(std::getline(meta, encoded)),
                    "truncated version metadata");
        attrs.push_back({column, decodeValueLine(encoded)});
    }
    version.cause = rca::AttributeSet(std::move(attrs));

    std::istringstream patch(store_->get(patchKey(id)));
    version.patch = nn::BnPatch::load(patch);
    return version;
}

bool
ModelRegistry::contains(int64_t id) const
{
    return store_->contains(metaKey(id));
}

std::vector<int64_t>
ModelRegistry::versionIds() const
{
    std::vector<int64_t> ids;
    for (const auto &key : store_->list("versions/")) {
        // versions/<id>/meta
        if (key.size() > 5 &&
            key.compare(key.size() - 5, 5, "/meta") == 0) {
            size_t start = std::string("versions/").size();
            ids.push_back(std::stoll(key.substr(start)));
        }
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

size_t
ModelRegistry::evictBelow(int64_t min_id)
{
    size_t evicted = 0;
    for (int64_t id : versionIds()) {
        if (id >= min_id)
            break;
        store_->remove(metaKey(id));
        store_->remove(patchKey(id));
        ++evicted;
    }
    return evicted;
}

std::optional<ModelVersion>
ModelRegistry::latestForCause(const rca::AttributeSet &cause) const
{
    std::optional<ModelVersion> best;
    for (int64_t id : versionIds()) {
        ModelVersion v = fetch(id);
        if (v.cause == cause &&
            (!best || v.updatedAt >= best->updatedAt))
            best = std::move(v);
    }
    return best;
}

} // namespace nazar::deploy
