/**
 * @file
 * Cloud-side model registry backed by a blob store.
 *
 * The paper's prototype writes adapted models to Amazon S3 (§5.8:
 * "up until the adapted models are written in S3"). BlobStore is the
 * offline stand-in (a named byte-blob map with size accounting);
 * ModelRegistry serializes model versions into it and reconstructs
 * them on fetch, so deployment pushes can be replayed and audited.
 */
#ifndef NAZAR_DEPLOY_REGISTRY_H
#define NAZAR_DEPLOY_REGISTRY_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "deploy/model_version.h"

namespace nazar::deploy {

/** In-memory named blob store (the S3 stand-in). */
class BlobStore
{
  public:
    /** Store (or overwrite) a blob. */
    void put(const std::string &key, std::string data);

    /** Fetch a blob; throws NazarError when absent. */
    const std::string &get(const std::string &key) const;

    bool contains(const std::string &key) const;

    /** Delete a blob; returns false when absent. */
    bool remove(const std::string &key);

    /** Keys with the given prefix, sorted. */
    std::vector<std::string> list(const std::string &prefix = "") const;

    size_t blobCount() const { return blobs_.size(); }

    /** Total stored bytes (the deployment-cost metric). */
    size_t totalBytes() const;

  private:
    std::map<std::string, std::string> blobs_;
};

/**
 * Registry of published model versions. Patches live in the blob
 * store under "versions/<id>/patch"; version metadata (cause, risk
 * ratio, timestamp) under "versions/<id>/meta".
 */
class ModelRegistry
{
  public:
    explicit ModelRegistry(BlobStore &store) : store_(&store) {}

    /**
     * Publish a version (assigns the id if the version's id is 0).
     * @return The version id.
     */
    int64_t publish(ModelVersion version);

    /** Reconstruct a published version; throws when unknown. */
    ModelVersion fetch(int64_t id) const;

    /** True when the id is published. */
    bool contains(int64_t id) const;

    /** All published ids, ascending. */
    std::vector<int64_t> versionIds() const;

    /** Most recently published version for a cause, if any. */
    std::optional<ModelVersion>
    latestForCause(const rca::AttributeSet &cause) const;

    /**
     * Evict every version with id < @p min_id from the blob store
     * (meta + patch). The caller is responsible for the safety
     * invariant: @p min_id must be at or below every device's
     * last-seen version, so no fetch for an evicted id can ever
     * arrive. @return The number of versions evicted.
     */
    size_t evictBelow(int64_t min_id);

    size_t size() const { return versionIds().size(); }

    /** Blob-store key of a version's metadata ("versions/<id>/meta"). */
    static std::string metaKey(int64_t id);

    /** Blob-store key of a version's BN patch ("versions/<id>/patch"). */
    static std::string patchKey(int64_t id);

  private:
    BlobStore *store_;
    int64_t nextId_ = 1;
};

} // namespace nazar::deploy

#endif // NAZAR_DEPLOY_REGISTRY_H
