/**
 * @file
 * Implementation of model-version display.
 */
#include "model_version.h"

#include <sstream>

namespace nazar::deploy {

std::string
ModelVersion::toString() const
{
    std::ostringstream os;
    os << "v" << id << " "
       << (cause.empty() ? std::string("{clean}") : cause.toString())
       << " rr=" << riskRatio << " t=" << updatedAt;
    return os.str();
}

} // namespace nazar::deploy
