/**
 * @file
 * Implementation of model-version display and serialization.
 */
#include "model_version.h"

#include <istream>
#include <sstream>

#include "common/error.h"

namespace nazar::deploy {

std::string
ModelVersion::toString() const
{
    std::ostringstream os;
    os << "v" << id << " "
       << (cause.empty() ? std::string("{clean}") : cause.toString())
       << " rr=" << riskRatio << " t=" << updatedAt;
    return os.str();
}

std::string
encodeValueLine(const driftlog::Value &v)
{
    switch (v.type()) {
      case driftlog::ValueType::kNull:
        return "n:";
      case driftlog::ValueType::kInt:
        return "i:" + v.toString();
      case driftlog::ValueType::kDouble:
        return "d:" + driftlog::formatDoubleExact(v.asDouble());
      case driftlog::ValueType::kBool:
        return "b:" + v.toString();
      case driftlog::ValueType::kString:
        return "s:" + v.asString();
    }
    return "n:";
}

driftlog::Value
decodeValueLine(const std::string &s)
{
    NAZAR_CHECK(s.size() >= 2 && s[1] == ':',
                "malformed value encoding: " + s);
    std::string body = s.substr(2);
    switch (s[0]) {
      case 'n': return driftlog::Value();
      case 'i': return driftlog::Value(
          static_cast<int64_t>(std::stoll(body)));
      case 'd': return driftlog::Value(std::stod(body));
      case 'b': return driftlog::Value(body == "true");
      case 's': return driftlog::Value(body);
      default:
        throw NazarError("unknown value tag in: " + s);
    }
}

void
ModelVersion::save(std::ostream &os) const
{
    os << "nazar-modelversion 1\n";
    os << id << " " << driftlog::formatDoubleExact(riskRatio) << " "
       << updatedAt << "\n";
    os << cause.size() << "\n";
    for (const auto &attr : cause.attributes())
        os << attr.column << "\n" << encodeValueLine(attr.value) << "\n";
    patch.save(os);
}

ModelVersion
ModelVersion::load(std::istream &is)
{
    std::string magic;
    int format = 0;
    is >> magic >> format;
    NAZAR_CHECK(is.good() && magic == "nazar-modelversion" && format == 1,
                "not a ModelVersion stream");

    ModelVersion version;
    std::string risk;
    size_t attr_count = 0;
    is >> version.id >> risk >> version.updatedAt >> attr_count;
    NAZAR_CHECK(!is.fail(), "truncated ModelVersion header");
    version.riskRatio = std::stod(risk);
    is.ignore(); // end-of-line
    std::vector<rca::Attribute> attrs;
    for (size_t i = 0; i < attr_count; ++i) {
        std::string column, encoded;
        NAZAR_CHECK(static_cast<bool>(std::getline(is, column)) &&
                        static_cast<bool>(std::getline(is, encoded)),
                    "truncated ModelVersion attributes");
        attrs.push_back({column, decodeValueLine(encoded)});
    }
    version.cause = rca::AttributeSet(std::move(attrs));
    version.patch = nn::BnPatch::load(is);
    return version;
}

} // namespace nazar::deploy
