/**
 * @file
 * The drift log: the cloud database of on-device detection results
 * (paper §3.3, Table 2).
 *
 * Each inference on a device produces one entry: detection verdict
 * plus metadata attributes (time, device, location, weather, model
 * version). The root-cause analyzer mines this table.
 */
#ifndef NAZAR_DRIFTLOG_DRIFT_LOG_H
#define NAZAR_DRIFTLOG_DRIFT_LOG_H

#include <string>
#include <vector>

#include "common/sim_date.h"
#include "driftlog/query.h"
#include "driftlog/table.h"

namespace nazar::driftlog {

/** One drift-log record, mirroring the paper's Table 2 schema. */
struct DriftLogEntry
{
    SimDate time;
    std::string deviceId;    ///< e.g. "android_42".
    std::string deviceModel; ///< Hardware model attribute.
    std::string location;    ///< e.g. "new_york".
    std::string weather;     ///< e.g. "snow" (cloud-enriched metadata).
    int64_t modelVersion = 0;
    bool drift = false;      ///< On-device detector verdict.
};

/** Column names of the drift log's canonical schema. */
namespace columns {
inline constexpr const char *kDay = "day";
inline constexpr const char *kTime = "time";
inline constexpr const char *kDeviceId = "device_id";
inline constexpr const char *kDeviceModel = "device_model";
inline constexpr const char *kLocation = "location";
inline constexpr const char *kWeather = "weather";
inline constexpr const char *kModelVersion = "model_version";
inline constexpr const char *kDrift = "drift";
} // namespace columns

/** Ingestion facade over the column store with the canonical schema. */
class DriftLog
{
  public:
    DriftLog();

    /** Ingest one entry. */
    void add(const DriftLogEntry &entry);

    /** Number of entries. */
    size_t size() const { return table_.rowCount(); }

    /** Number of entries flagged as drift. */
    size_t driftCount() const;

    /** Drop all entries (e.g. at an analysis-window boundary). */
    void clear() { table_.clear(); }

    const Table &table() const { return table_; }

    /** Start a query over the log. */
    Query query() const { return Query(table_); }

    /**
     * The metadata attributes root-cause analysis mines by default.
     * (Time and model version are bookkeeping, not candidate causes.)
     */
    static std::vector<std::string> defaultAttributeColumns();

    /** Materialize one row back into an entry. */
    DriftLogEntry entry(size_t row) const;

    /**
     * Adopt a table that already has the canonical schema (e.g. one
     * read back from a CSV snapshot). Cell-exact: unlike re-adding
     * entries, no formatting round-trip happens, and the obs ingest
     * counter is not advanced. Throws NazarError on a schema mismatch.
     */
    static DriftLog fromTable(Table table);

  private:
    Table table_;
};

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_DRIFT_LOG_H
