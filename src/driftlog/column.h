/**
 * @file
 * Dictionary-encoded column — the storage unit of the drift-log
 * column store.
 *
 * Every column keeps a sorted dictionary of its distinct cell values
 * and stores the rows as a dense vector of dictionary ids. The
 * dictionary is sorted by Value's total order and ids are assigned in
 * dictionary order, so
 *
 *     id(a) < id(b)  <=>  a < b        (id order == Value totalOrder)
 *
 * holds as a class invariant. Everything downstream leans on it:
 *
 *  - equality predicates resolve a literal to one id (or to "absent",
 *    which matches nothing) and compare uint32s per row;
 *  - range predicates (<, <=, >, >=) resolve to a half-open id
 *    interval via lowerBound/upperBound, again uint32 compares;
 *  - group-by aggregates count into dense per-id arrays and emit in
 *    id order, which is exactly the sorted Value order the old
 *    std::map<Value, ...> aggregations produced — bit-for-bit;
 *  - distinct() is a read of the dictionary, no per-call sort.
 *
 * NULL cells are ordinary dictionary entries (Value{} sorts below
 * every typed value in the total order), so the invariant covers them
 * with no sentinel; nullCount() tracks how many rows are NULL.
 *
 * Appends are O(log m) in the dictionary size: a new distinct value
 * is assigned the next free id and the column is marked unsorted
 * unless the value extends the dictionary at the top. The first read
 * after such an append re-establishes the invariant in one
 * O(n + m log m) normalization pass (re-id the dictionary in sorted
 * order, remap the row ids). Amortized over a batch of appends this
 * is one remap per read barrier, independent of how many distinct
 * values arrived — high-cardinality columns (e.g. the drift log's
 * time strings) stay O(n log m) to build instead of O(n·m).
 *
 * Thread contract: mutation (append/clear) and the *first* read after
 * a mutation are not synchronized internally; callers must order them
 * before any concurrent reads. All call sites do — the RCA scans and
 * the query executor resolve columns on the dispatching thread before
 * fanning out, and the runtime pool's batch publish provides the
 * happens-before edge to the workers.
 */
#ifndef NAZAR_DRIFTLOG_COLUMN_H
#define NAZAR_DRIFTLOG_COLUMN_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "driftlog/value.h"

namespace nazar::driftlog {

/** One dictionary-encoded column of a table. */
class Column
{
  public:
    /** Dense dictionary id of a cell value within its column. */
    using Id = uint32_t;

    explicit Column(ValueType type) : type_(type) {}

    /** Declared type of the column (cells are this type or NULL). */
    ValueType type() const { return type_; }

    /** Number of rows. */
    size_t size() const { return ids_.size(); }

    /** Number of NULL rows. */
    size_t nullCount() const { return nullCount_; }

    // ---- dictionary -----------------------------------------------

    /** Number of distinct cell values (NULL counts as one entry). */
    size_t dictSize() const
    {
        ensureSorted();
        return dict_.size();
    }

    /** Dictionary value of an id. Ids are dense: 0 <= id < dictSize(),
     *  and dictionary order equals Value total order. */
    const Value &dictValue(Id id) const;

    /** The sorted dictionary itself. Every entry is referenced by at
     *  least one row (values only enter via append). */
    const std::vector<Value> &dictionary() const
    {
        ensureSorted();
        return dict_;
    }

    /**
     * Id of an exact value, or nullopt when the value never occurs in
     * the column. Predicate binding uses the absent case to
     * short-circuit an equality to zero rows without any scan.
     */
    std::optional<Id> idOf(const Value &v) const;

    /** First id whose dictionary value is >= v (dictSize() when none).
     *  With the ordering invariant, `cell < v` over rows is exactly
     *  `id < lowerBound(v)`. */
    Id lowerBound(const Value &v) const;

    /** First id whose dictionary value is > v (dictSize() when none). */
    Id upperBound(const Value &v) const;

    // ---- rows ------------------------------------------------------

    /** Per-row dictionary ids — the typed integer spine the vectorized
     *  executor and the FIM probes scan. */
    const std::vector<Id> &ids() const
    {
        ensureSorted();
        return ids_;
    }

    /** Dictionary id of one row. */
    Id idAt(size_t row) const;

    /** Cell value of one row (a dictionary read). */
    const Value &at(size_t row) const;

    /** Decode the whole column into a Value vector — the compatibility
     *  view for row-at-a-time oracles and pre-dictionary call sites. */
    std::vector<Value> materialize() const;

    // ---- mutation --------------------------------------------------

    /**
     * Append one cell. The value must be NULL or match the column
     * type; numeric widening is the Table's job and has already
     * happened. O(log m); may leave the dictionary unsorted until the
     * next read.
     */
    void append(const Value &v);

    /** Drop all rows and the dictionary (type retained). */
    void clear();

  private:
    /** Re-establish id order == Value totalOrder after appends that
     *  introduced out-of-order dictionary entries. Const because every
     *  read path triggers it; see the thread contract above. */
    void ensureSorted() const;

    ValueType type_;
    size_t nullCount_ = 0;
    /** Value -> current id. Keys iterate in Value total order, which
     *  is what normalization walks to re-id the dictionary. */
    mutable std::map<Value, Id> index_;
    /** id -> value; sorted ascending whenever sorted_ is true. */
    mutable std::vector<Value> dict_;
    mutable std::vector<Id> ids_;
    mutable bool sorted_ = true;
};

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_COLUMN_H
