/**
 * @file
 * Implementation of the drift-log facade.
 */
#include "drift_log.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace nazar::driftlog {

namespace {

Schema
canonicalSchema()
{
    return Schema({
        {columns::kDay, ValueType::kInt},
        {columns::kTime, ValueType::kString},
        {columns::kDeviceId, ValueType::kString},
        {columns::kDeviceModel, ValueType::kString},
        {columns::kLocation, ValueType::kString},
        {columns::kWeather, ValueType::kString},
        {columns::kModelVersion, ValueType::kInt},
        {columns::kDrift, ValueType::kBool},
    });
}

} // namespace

DriftLog::DriftLog() : table_(canonicalSchema())
{
}

void
DriftLog::add(const DriftLogEntry &entry)
{
    static obs::Counter &ingested =
        obs::Registry::global().counter("driftlog.rows_ingested");
    ingested.add(1);
    table_.append(Row{
        Value(static_cast<int64_t>(entry.time.dayIndex())),
        Value(entry.time.toDateTimeString()),
        Value(entry.deviceId),
        Value(entry.deviceModel),
        Value(entry.location),
        Value(entry.weather),
        Value(entry.modelVersion),
        Value(entry.drift),
    });
}

size_t
DriftLog::driftCount() const
{
    return query().where(columns::kDrift, Value(true)).count();
}

std::vector<std::string>
DriftLog::defaultAttributeColumns()
{
    return {columns::kWeather, columns::kLocation, columns::kDeviceId,
            columns::kDeviceModel};
}

DriftLog
DriftLog::fromTable(Table table)
{
    Schema canonical = canonicalSchema();
    NAZAR_CHECK(table.schema().columnCount() == canonical.columnCount(),
                "drift-log table has wrong column count");
    for (size_t c = 0; c < canonical.columnCount(); ++c) {
        NAZAR_CHECK(table.schema().column(c).name ==
                            canonical.column(c).name &&
                        table.schema().column(c).type ==
                            canonical.column(c).type,
                    "drift-log table schema mismatch at column " +
                        canonical.column(c).name);
    }
    DriftLog log;
    log.table_ = std::move(table);
    return log;
}

DriftLogEntry
DriftLog::entry(size_t row) const
{
    DriftLogEntry e;
    e.time = SimDate(
        static_cast<int>(table_.at(row, columns::kDay).asInt()));
    e.deviceId = table_.at(row, columns::kDeviceId).asString();
    e.deviceModel = table_.at(row, columns::kDeviceModel).asString();
    e.location = table_.at(row, columns::kLocation).asString();
    e.weather = table_.at(row, columns::kWeather).asString();
    e.modelVersion = table_.at(row, columns::kModelVersion).asInt();
    e.drift = table_.at(row, columns::kDrift).asBool();
    return e;
}

} // namespace nazar::driftlog
