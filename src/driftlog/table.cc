/**
 * @file
 * Implementation of the column-store table.
 */
#include "table.h"

#include "common/error.h"

namespace nazar::driftlog {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns))
{
    NAZAR_CHECK(!columns_.empty(), "schema needs at least one column");
    for (size_t i = 0; i < columns_.size(); ++i)
        for (size_t j = i + 1; j < columns_.size(); ++j)
            NAZAR_CHECK(columns_[i].name != columns_[j].name,
                        "duplicate column name: " + columns_[i].name);
}

size_t
Schema::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < columns_.size(); ++i)
        if (columns_[i].name == name)
            return i;
    throw NazarError("no such column: " + name);
}

bool
Schema::has(const std::string &name) const
{
    for (const auto &c : columns_)
        if (c.name == name)
            return true;
    return false;
}

Table::Table(Schema schema) : schema_(std::move(schema))
{
    columns_.reserve(schema_.columnCount());
    for (size_t i = 0; i < schema_.columnCount(); ++i)
        columns_.emplace_back(schema_.column(i).type);
}

void
Table::append(const Row &row)
{
    NAZAR_CHECK(row.size() == schema_.columnCount(),
                "row width does not match schema");
    // Validate (and normalize numeric cells) before touching any
    // column, so a rejected row leaves the table unchanged.
    Row normalized = row;
    for (size_t i = 0; i < normalized.size(); ++i) {
        Value &cell = normalized[i];
        if (cell.isNull())
            continue;
        if (schema_.column(i).type == ValueType::kDouble &&
            cell.type() == ValueType::kInt) {
            // A double column widens int cells at ingest: 3 and 3.0
            // must land as one cell value, or downstream Value-keyed
            // aggregations (FIM level 1, group-bys) split a single
            // attribute group into two by variant index.
            cell = Value(cell.asDouble());
            continue;
        }
        NAZAR_CHECK(cell.type() == schema_.column(i).type,
                    "type mismatch in column " + schema_.column(i).name);
    }
    for (size_t i = 0; i < normalized.size(); ++i)
        columns_[i].append(normalized[i]);
    ++rowCount_;
}

const Value &
Table::at(size_t row, size_t col) const
{
    NAZAR_CHECK(row < rowCount_, "row out of range");
    NAZAR_CHECK(col < columns_.size(), "column out of range");
    return columns_[col].at(row);
}

const Value &
Table::at(size_t row, const std::string &column) const
{
    return at(row, schema_.indexOf(column));
}

Row
Table::row(size_t r) const
{
    NAZAR_CHECK(r < rowCount_, "row out of range");
    Row out;
    out.reserve(columns_.size());
    for (const auto &col : columns_)
        out.push_back(col.at(r));
    return out;
}

const Column &
Table::column(size_t col) const
{
    NAZAR_CHECK(col < columns_.size(), "column out of range");
    return columns_[col];
}

const Column &
Table::column(const std::string &name) const
{
    return column(schema_.indexOf(name));
}

std::vector<Value>
Table::distinct(const std::string &name) const
{
    // The dictionary is exactly the distinct set in sorted order.
    return column(name).dictionary();
}

void
Table::clear()
{
    for (auto &col : columns_)
        col.clear();
    rowCount_ = 0;
}

} // namespace nazar::driftlog
