/**
 * @file
 * Implementation of the dictionary-encoded column.
 */
#include "column.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace nazar::driftlog {

const Value &
Column::dictValue(Id id) const
{
    ensureSorted();
    NAZAR_CHECK(id < dict_.size(), "dictionary id out of range");
    return dict_[id];
}

std::optional<Column::Id>
Column::idOf(const Value &v) const
{
    ensureSorted();
    auto it = index_.find(v);
    if (it == index_.end())
        return std::nullopt;
    return it->second;
}

Column::Id
Column::lowerBound(const Value &v) const
{
    ensureSorted();
    return static_cast<Id>(
        std::lower_bound(dict_.begin(), dict_.end(), v) - dict_.begin());
}

Column::Id
Column::upperBound(const Value &v) const
{
    ensureSorted();
    return static_cast<Id>(
        std::upper_bound(dict_.begin(), dict_.end(), v) - dict_.begin());
}

Column::Id
Column::idAt(size_t row) const
{
    ensureSorted();
    NAZAR_CHECK(row < ids_.size(), "row out of range");
    return ids_[row];
}

const Value &
Column::at(size_t row) const
{
    ensureSorted();
    NAZAR_CHECK(row < ids_.size(), "row out of range");
    return dict_[ids_[row]];
}

std::vector<Value>
Column::materialize() const
{
    ensureSorted();
    std::vector<Value> out;
    out.reserve(ids_.size());
    for (Id id : ids_)
        out.push_back(dict_[id]);
    return out;
}

void
Column::append(const Value &v)
{
    NAZAR_CHECK(v.isNull() || v.type() == type_,
                "cell type does not match column type");
    auto [it, inserted] =
        index_.try_emplace(v, static_cast<Id>(dict_.size()));
    if (inserted) {
        NAZAR_CHECK(dict_.size() <
                        static_cast<size_t>(
                            std::numeric_limits<Id>::max()),
                    "column dictionary overflow");
        // New values take the next free id. Appending above the
        // current maximum (monotone columns: day indices, timestamps)
        // keeps the dictionary sorted in place; anything else defers
        // the re-id to the next read's normalization pass.
        if (!dict_.empty() && !(dict_.back() < v))
            sorted_ = false;
        dict_.push_back(v);
    }
    if (v.isNull())
        ++nullCount_;
    ids_.push_back(it->second);
}

void
Column::clear()
{
    index_.clear();
    dict_.clear();
    ids_.clear();
    nullCount_ = 0;
    sorted_ = true;
}

void
Column::ensureSorted() const
{
    if (sorted_)
        return;
    // Walk the index in key order (== Value total order) assigning
    // fresh dense ids, then remap the row ids through old -> new.
    std::vector<Id> remap(dict_.size());
    Id next = 0;
    for (auto &[value, id] : index_) {
        remap[id] = next;
        id = next;
        ++next;
    }
    std::vector<Value> sorted_dict(dict_.size());
    for (const auto &[value, id] : index_)
        sorted_dict[id] = value;
    dict_ = std::move(sorted_dict);
    for (Id &id : ids_)
        id = remap[id];
    sorted_ = true;
}

} // namespace nazar::driftlog
