/**
 * @file
 * Relational query layer over the drift-log table.
 *
 * Provides the filter / count / group-by-count operations that the
 * paper's FIM implementation issues as SQL ("a simple SQL Count
 * aggregation, with appropriate conditions", §4).
 */
#ifndef NAZAR_DRIFTLOG_QUERY_H
#define NAZAR_DRIFTLOG_QUERY_H

#include <functional>
#include <map>

#include "driftlog/table.h"

namespace nazar::driftlog {

/** Comparison operators for simple predicates. */
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/** One column-vs-constant condition. */
struct Condition
{
    std::string column;
    CompareOp op = CompareOp::kEq;
    Value value;

    /** Evaluate against a cell value — the row-at-a-time Value
     *  comparison. The vectorized path binds the condition to
     *  dictionary-id space instead (driftlog/plan.h); this form is
     *  retained as the semantic reference (differential tests pit the
     *  two against each other). */
    bool matches(const Value &cell) const;
};

/**
 * Immutable fluent query builder (each where() returns a new Query),
 * evaluated lazily by the terminal operations. Conditions are ANDed.
 */
class Query
{
  public:
    explicit Query(const Table &table) : table_(&table) {}

    /** AND a column == value condition. */
    Query where(const std::string &column, Value value) const;

    /** AND a general condition. */
    Query where(const std::string &column, CompareOp op, Value value) const;

    /** Number of matching rows. */
    size_t count() const;

    /** Matching row indices, ascending. */
    std::vector<size_t> select() const;

    /** Count of matching rows per distinct value of @p column. */
    std::map<Value, size_t> groupByCount(const std::string &column) const;

    /**
     * Count of matching rows per distinct *combination* of the given
     * columns (multi-column GROUP BY).
     */
    std::map<std::vector<Value>, size_t>
    groupByCount(const std::vector<std::string> &columns) const;

    const std::vector<Condition> &conditions() const { return conditions_; }

  private:
    const Table *table_;
    std::vector<Condition> conditions_;
};

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_QUERY_H
