/**
 * @file
 * Column-store table — the offline stand-in for the Amazon Aurora
 * drift log (paper §4, "Drift log").
 *
 * The root-cause analysis of §3.3 runs as relational scans and
 * count-aggregations over this table, exactly where the paper issues
 * SQL queries. Storage is column-major, so scans touch only the
 * attribute columns FIM cares about; this is what makes the Fig 9d
 * linear-scaling experiment a property of the real code path.
 */
#ifndef NAZAR_DRIFTLOG_TABLE_H
#define NAZAR_DRIFTLOG_TABLE_H

#include <string>
#include <vector>

#include "driftlog/value.h"

namespace nazar::driftlog {

/** A column definition. */
struct ColumnDef
{
    std::string name;
    ValueType type;
};

/** Ordered set of column definitions. */
class Schema
{
  public:
    Schema() = default;
    explicit Schema(std::vector<ColumnDef> columns);

    size_t columnCount() const { return columns_.size(); }
    const ColumnDef &column(size_t i) const { return columns_.at(i); }

    /** Index of a column by name; throws NazarError when absent. */
    size_t indexOf(const std::string &name) const;

    /** True when a column with this name exists. */
    bool has(const std::string &name) const;

    const std::vector<ColumnDef> &columns() const { return columns_; }

  private:
    std::vector<ColumnDef> columns_;
};

/** A row as an ordered list of cell values. */
using Row = std::vector<Value>;

/** Column-major table with append + scan + aggregate operations. */
class Table
{
  public:
    explicit Table(Schema schema);

    const Schema &schema() const { return schema_; }
    size_t rowCount() const { return rowCount_; }

    /** Append one row; values must match the schema's types.
     *  kNull cells are allowed anywhere, and int cells appended to a
     *  double column are widened to double at ingest (so a numeric
     *  column holds one representation per value). */
    void append(const Row &row);

    /** Cell accessor. */
    const Value &at(size_t row, size_t col) const;

    /** Cell accessor by column name. */
    const Value &at(size_t row, const std::string &column) const;

    /** Materialize one row. */
    Row row(size_t r) const;

    /** Entire column. */
    const std::vector<Value> &column(size_t col) const;
    const std::vector<Value> &column(const std::string &name) const;

    /** Distinct values of a column, sorted. */
    std::vector<Value> distinct(const std::string &column) const;

    /** Remove all rows (schema retained). */
    void clear();

  private:
    Schema schema_;
    size_t rowCount_ = 0;
    std::vector<std::vector<Value>> columns_;
};

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_TABLE_H
