/**
 * @file
 * Column-store table — the offline stand-in for the Amazon Aurora
 * drift log (paper §4, "Drift log").
 *
 * The root-cause analysis of §3.3 runs as relational scans and
 * count-aggregations over this table, exactly where the paper issues
 * SQL queries. Storage is column-major and dictionary-encoded: each
 * column is a driftlog::Column (sorted value dictionary + dense id
 * vector), so the FIM candidate passes and the vectorized query
 * executor compare uint32 ids instead of tagged Values per cell —
 * this is what makes the Fig 9d scalability experiment a property of
 * the real code path. The Value-based accessors (at/row/distinct)
 * remain as thin dictionary-decoding views.
 */
#ifndef NAZAR_DRIFTLOG_TABLE_H
#define NAZAR_DRIFTLOG_TABLE_H

#include <string>
#include <vector>

#include "driftlog/column.h"
#include "driftlog/value.h"

namespace nazar::driftlog {

/** A column definition. */
struct ColumnDef
{
    std::string name;
    ValueType type;
};

/** Ordered set of column definitions. */
class Schema
{
  public:
    Schema() = default;
    explicit Schema(std::vector<ColumnDef> columns);

    size_t columnCount() const { return columns_.size(); }
    const ColumnDef &column(size_t i) const { return columns_.at(i); }

    /** Index of a column by name; throws NazarError when absent. */
    size_t indexOf(const std::string &name) const;

    /** True when a column with this name exists. */
    bool has(const std::string &name) const;

    const std::vector<ColumnDef> &columns() const { return columns_; }

  private:
    std::vector<ColumnDef> columns_;
};

/** A row as an ordered list of cell values. */
using Row = std::vector<Value>;

/** Column-major table with append + scan + aggregate operations. */
class Table
{
  public:
    explicit Table(Schema schema);

    const Schema &schema() const { return schema_; }
    size_t rowCount() const { return rowCount_; }

    /** Append one row; values must match the schema's types.
     *  kNull cells are allowed anywhere, and int cells appended to a
     *  double column are widened to double at ingest (so a numeric
     *  column holds one representation per value). */
    void append(const Row &row);

    /** Cell accessor. */
    const Value &at(size_t row, size_t col) const;

    /** Cell accessor by column name. */
    const Value &at(size_t row, const std::string &column) const;

    /** Materialize one row. */
    Row row(size_t r) const;

    /** The dictionary-encoded column itself (ids + dictionary). */
    const Column &column(size_t col) const;
    const Column &column(const std::string &name) const;

    /** Distinct values of a column, sorted — a copy of the column's
     *  dictionary, which already is that set in that order. */
    std::vector<Value> distinct(const std::string &column) const;

    /** Remove all rows (schema retained). */
    void clear();

  private:
    Schema schema_;
    size_t rowCount_ = 0;
    std::vector<Column> columns_;
};

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_TABLE_H
