/**
 * @file
 * Implementation of predicate binding and the vectorized scan
 * primitives.
 */
#include "plan.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.h"

namespace nazar::driftlog {

namespace {

/**
 * The per-scan view of a bound predicate: the column's id vector
 * resolved to a raw pointer once, kAll predicates dropped. Only
 * kIdRange and kNotId reach the row loop.
 */
struct ScanPredicate
{
    const Column::Id *ids;
    bool isRange;
    Column::Id lo, hi, excl;

    bool matches(size_t row) const
    {
        Column::Id id = ids[row];
        return isRange ? (id >= lo && id < hi) : (id != excl);
    }
};

/** Compile bound predicates into scan form; empty optional when some
 *  predicate is impossible (zero rows, no scan needed). */
std::vector<ScanPredicate>
compile(const Table &table, const std::vector<BoundPredicate> &preds)
{
    std::vector<ScanPredicate> scan;
    scan.reserve(preds.size());
    for (const auto &p : preds) {
        if (p.kind == BoundPredicate::Kind::kAll)
            continue;
        NAZAR_CHECK(p.kind != BoundPredicate::Kind::kNone,
                    "impossible predicate reached the scan");
        scan.push_back(ScanPredicate{
            table.column(p.col).ids().data(),
            p.kind == BoundPredicate::Kind::kIdRange, p.lo, p.hi,
            p.excl});
    }
    return scan;
}

bool
rowMatches(const std::vector<ScanPredicate> &scan, size_t row)
{
    for (const auto &p : scan)
        if (!p.matches(row))
            return false;
    return true;
}

} // namespace

BoundPredicate
bindCondition(const Table &table, const Condition &cond)
{
    size_t col_idx = table.schema().indexOf(cond.column);
    const Column &col = table.column(col_idx);

    BoundPredicate p;
    p.col = col_idx;
    p.op = cond.op;
    p.literal = cond.value;
    // Mirror Table's ingest normalization: an int literal against a
    // double column widens, so the predicate compares by numeric value
    // instead of by variant index.
    if (col.type() == ValueType::kDouble &&
        p.literal.type() == ValueType::kInt)
        p.literal = Value(p.literal.asDouble());

    const Column::Id dict_size =
        static_cast<Column::Id>(col.dictSize());
    switch (cond.op) {
      case CompareOp::kEq: {
        auto id = col.idOf(p.literal);
        if (!id) {
            p.kind = BoundPredicate::Kind::kNone;
        } else {
            p.kind = BoundPredicate::Kind::kIdRange;
            p.lo = *id;
            p.hi = *id + 1;
        }
        return p;
      }
      case CompareOp::kNe: {
        auto id = col.idOf(p.literal);
        if (!id) {
            p.kind = BoundPredicate::Kind::kAll;
        } else {
            p.kind = BoundPredicate::Kind::kNotId;
            p.excl = *id;
        }
        return p;
      }
      case CompareOp::kLt:
        p.kind = BoundPredicate::Kind::kIdRange;
        p.lo = 0;
        p.hi = col.lowerBound(p.literal);
        break;
      case CompareOp::kLe:
        p.kind = BoundPredicate::Kind::kIdRange;
        p.lo = 0;
        p.hi = col.upperBound(p.literal);
        break;
      case CompareOp::kGt:
        p.kind = BoundPredicate::Kind::kIdRange;
        p.lo = col.upperBound(p.literal);
        p.hi = dict_size;
        break;
      case CompareOp::kGe:
        p.kind = BoundPredicate::Kind::kIdRange;
        p.lo = col.lowerBound(p.literal);
        p.hi = dict_size;
        break;
    }
    if (p.lo >= p.hi)
        p.kind = BoundPredicate::Kind::kNone;
    else if (p.lo == 0 && p.hi == dict_size)
        p.kind = BoundPredicate::Kind::kAll;
    return p;
}

std::vector<BoundPredicate>
bindConditions(const Table &table, const std::vector<Condition> &conds)
{
    std::vector<BoundPredicate> out;
    out.reserve(conds.size());
    for (const auto &c : conds)
        out.push_back(bindCondition(table, c));
    return out;
}

bool
anyImpossible(const std::vector<BoundPredicate> &preds)
{
    for (const auto &p : preds)
        if (p.kind == BoundPredicate::Kind::kNone)
            return true;
    return false;
}

size_t
countMatching(const Table &table,
              const std::vector<BoundPredicate> &preds)
{
    if (anyImpossible(preds))
        return 0;
    auto scan = compile(table, preds);
    if (scan.empty())
        return table.rowCount();
    size_t n = 0;
    for (size_t r = 0; r < table.rowCount(); ++r)
        if (rowMatches(scan, r))
            ++n;
    return n;
}

std::vector<size_t>
selectMatching(const Table &table,
               const std::vector<BoundPredicate> &preds)
{
    std::vector<size_t> out;
    if (anyImpossible(preds))
        return out;
    auto scan = compile(table, preds);
    for (size_t r = 0; r < table.rowCount(); ++r)
        if (rowMatches(scan, r))
            out.push_back(r);
    return out;
}

std::vector<size_t>
groupCountsSingle(const Table &table,
                  const std::vector<BoundPredicate> &preds,
                  size_t group_col)
{
    const Column &gc = table.column(group_col);
    std::vector<size_t> counts(gc.dictSize(), 0);
    if (anyImpossible(preds))
        return counts;
    auto scan = compile(table, preds);
    const Column::Id *ids = gc.ids().data();
    for (size_t r = 0; r < table.rowCount(); ++r)
        if (rowMatches(scan, r))
            ++counts[ids[r]];
    return counts;
}

std::vector<std::pair<std::vector<Column::Id>, size_t>>
groupCountsMulti(const Table &table,
                 const std::vector<BoundPredicate> &preds,
                 const std::vector<size_t> &group_cols)
{
    NAZAR_CHECK(!group_cols.empty(),
                "group by needs at least one column");
    std::vector<std::pair<std::vector<Column::Id>, size_t>> out;
    if (anyImpossible(preds))
        return out;
    auto scan = compile(table, preds);
    std::vector<const Column::Id *> key_ids;
    key_ids.reserve(group_cols.size());
    for (size_t gc : group_cols)
        key_ids.push_back(table.column(gc).ids().data());

    // Id tuples compare lexicographically exactly as the decoded
    // Value tuples do (per-column id order == Value order), so this
    // map iterates in the same order the old Value-keyed map did —
    // with uint32 tuple keys instead of Value vectors.
    std::map<std::vector<Column::Id>, size_t> groups;
    std::vector<Column::Id> key(group_cols.size());
    for (size_t r = 0; r < table.rowCount(); ++r) {
        if (!rowMatches(scan, r))
            continue;
        for (size_t i = 0; i < key_ids.size(); ++i)
            key[i] = key_ids[i][r];
        ++groups[key];
    }
    out.reserve(groups.size());
    for (auto &[k, count] : groups)
        out.emplace_back(k, count);
    return out;
}

std::string
describePredicate(const Table &table, const BoundPredicate &pred)
{
    const Schema &schema = table.schema();
    const Column &col = table.column(pred.col);
    std::ostringstream os;
    const char *op = "=";
    switch (pred.op) {
      case CompareOp::kEq: op = "="; break;
      case CompareOp::kNe: op = "!="; break;
      case CompareOp::kLt: op = "<"; break;
      case CompareOp::kLe: op = "<="; break;
      case CompareOp::kGt: op = ">"; break;
      case CompareOp::kGe: op = ">="; break;
    }
    os << "where " << schema.column(pred.col).name << " " << op << " ";
    if (pred.literal.type() == ValueType::kString)
        os << "'" << pred.literal.toString() << "'";
    else
        os << pred.literal.toString();
    os << ": ";
    switch (pred.kind) {
      case BoundPredicate::Kind::kAll:
        os << "matches all rows (dropped from scan)";
        break;
      case BoundPredicate::Kind::kNone:
        os << "no matching dictionary id -> 0 rows "
              "(scan short-circuited)";
        break;
      case BoundPredicate::Kind::kIdRange:
        os << "ids [" << pred.lo << "," << pred.hi << ") of dict("
           << col.dictSize() << ")";
        break;
      case BoundPredicate::Kind::kNotId:
        os << "id != " << pred.excl << " of dict(" << col.dictSize()
           << ")";
        break;
    }
    return os.str();
}

} // namespace nazar::driftlog
