/**
 * @file
 * Predicate binding and vectorized scan primitives over
 * dictionary-encoded columns — the shared execution layer under both
 * the fluent Query API and the SQL engine.
 *
 * Binding resolves each column-vs-literal condition into the id space
 * of its column exactly once per evaluation:
 *
 *  - `=`  resolves the literal through the dictionary to a single id
 *    (an absent literal short-circuits the whole scan to zero rows);
 *  - `!=` resolves to an excluded id (absent literal: matches all);
 *  - `<  <= > >=` resolve to a half-open id interval via the sorted
 *    dictionary's lower/upper bound — valid because id order equals
 *    Value total order, including across NULL and mixed-type
 *    comparisons, so the interval reproduces the old per-cell Value
 *    comparison bit-for-bit.
 *
 * Execution then scans the dense per-row id vectors with pure uint32
 * compares: selection vectors for row retrieval, dense per-id count
 * arrays for group-by (emitted in id order == sorted Value order, the
 * same order the old std::map<Value, ...> aggregations produced).
 */
#ifndef NAZAR_DRIFTLOG_PLAN_H
#define NAZAR_DRIFTLOG_PLAN_H

#include <string>
#include <vector>

#include "driftlog/query.h"
#include "driftlog/table.h"

namespace nazar::driftlog {

/** One condition bound to the id space of its column. */
struct BoundPredicate
{
    enum class Kind {
        kAll,     ///< Matches every row; dropped before the scan.
        kNone,    ///< Matches no row; short-circuits the scan.
        kIdRange, ///< Matches iff lo <= id < hi.
        kNotId,   ///< Matches iff id != excl.
    };

    size_t col = 0;   ///< Schema column index.
    CompareOp op = CompareOp::kEq;
    Value literal;    ///< Widened literal (kept for EXPLAIN).
    Kind kind = Kind::kAll;
    Column::Id lo = 0;
    Column::Id hi = 0;
    Column::Id excl = 0;

    bool matchesId(Column::Id id) const
    {
        switch (kind) {
          case Kind::kAll:     return true;
          case Kind::kNone:    return false;
          case Kind::kIdRange: return id >= lo && id < hi;
          case Kind::kNotId:   return id != excl;
        }
        return false;
    }
};

/**
 * Bind one condition: widen an int literal against a double column
 * (mirroring Table ingest, so 3 and 3.0 compare as one value), then
 * resolve it to the column's id space.
 * @throws NazarError when the column does not exist.
 */
BoundPredicate bindCondition(const Table &table, const Condition &cond);

/** Bind a conjunction of conditions. */
std::vector<BoundPredicate>
bindConditions(const Table &table, const std::vector<Condition> &conds);

/** True when any predicate is kNone — zero rows, skip the scan. */
bool anyImpossible(const std::vector<BoundPredicate> &preds);

/** Number of rows matching all predicates. */
size_t countMatching(const Table &table,
                     const std::vector<BoundPredicate> &preds);

/** Selection vector: matching row indices, ascending. */
std::vector<size_t>
selectMatching(const Table &table,
               const std::vector<BoundPredicate> &preds);

/**
 * Single-column group-by: matching-row counts indexed by the group
 * column's dictionary id — a dense array, no per-evaluation map.
 * Entry i is the count for dictionary value i (zero when no matching
 * row carries it).
 */
std::vector<size_t>
groupCountsSingle(const Table &table,
                  const std::vector<BoundPredicate> &preds,
                  size_t group_col);

/**
 * Multi-column group-by: (id-tuple, count) pairs over matching rows,
 * sorted by id tuple — which is the lexicographic sorted-Value order
 * of the decoded key tuples.
 */
std::vector<std::pair<std::vector<Column::Id>, size_t>>
groupCountsMulti(const Table &table,
                 const std::vector<BoundPredicate> &preds,
                 const std::vector<size_t> &group_cols);

/** One-line human rendering of a bound predicate (EXPLAIN). */
std::string describePredicate(const Table &table,
                              const BoundPredicate &pred);

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_PLAN_H
