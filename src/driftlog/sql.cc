/**
 * @file
 * Implementation of the SQL dialect.
 *
 * The pipeline is staged like a real engine:
 *
 *   tokenize/parse  -> ParsedQuery        (syntax only)
 *   bind            -> SqlPlan            (names -> column indices,
 *                                          literals -> dictionary ids,
 *                                          select-list resolution)
 *   column-prune    -> SqlPlan.readCols   (only columns the query
 *                                          touches are ever scanned)
 *   execute         -> SqlResult          (vectorized: selection
 *                                          vectors + dense group-by
 *                                          over dictionary ids)
 *
 * `EXPLAIN SELECT ...` stops after binding and renders the plan: the
 * pruned column set and every predicate's resolved id range — an
 * absent literal shows up here as an explicit 0-row short-circuit.
 *
 * executeSqlNaive is the retained row-at-a-time interpreter (per-cell
 * Value comparisons, Value-keyed group maps). It exists as the
 * semantic oracle: differential tests assert the vectorized engine
 * matches it bit-for-bit, and benchmarks use it as the dict-off
 * baseline.
 */
#include "sql.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "common/error.h"
#include "driftlog/plan.h"
#include "driftlog/query.h"
#include "obs/span.h"

namespace nazar::driftlog {

namespace {

// ---- tokenizer ----------------------------------------------------------

enum class TokenKind {
    kIdent,   ///< bare identifier or keyword
    kNumber,  ///< integer or double literal
    kString,  ///< single-quoted string literal
    kSymbol,  ///< punctuation / operator
    kEnd,
};

struct Token
{
    TokenKind kind = TokenKind::kEnd;
    std::string text; ///< Raw text (uppercased for idents? no — raw).
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) { advance(); }

    const Token &peek() const { return current_; }

    Token
    next()
    {
        Token t = current_;
        advance();
        return t;
    }

  private:
    void
    advance()
    {
        while (pos_ < src_.size() &&
               std::isspace(static_cast<unsigned char>(src_[pos_])))
            ++pos_;
        if (pos_ >= src_.size()) {
            current_ = Token{TokenKind::kEnd, ""};
            return;
        }
        char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_'))
                ++pos_;
            current_ =
                Token{TokenKind::kIdent, src_.substr(start, pos_ - start)};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && pos_ + 1 < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
            size_t start = pos_;
            ++pos_;
            while (pos_ < src_.size() &&
                   (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '.'))
                ++pos_;
            current_ =
                Token{TokenKind::kNumber, src_.substr(start, pos_ - start)};
            return;
        }
        if (c == '\'') {
            ++pos_;
            size_t start = pos_;
            while (pos_ < src_.size() && src_[pos_] != '\'')
                ++pos_;
            NAZAR_CHECK(pos_ < src_.size(),
                        "unterminated string literal in SQL");
            current_ =
                Token{TokenKind::kString, src_.substr(start, pos_ - start)};
            ++pos_; // closing quote
            return;
        }
        // Multi-char operators first.
        for (const char *op : {"<=", ">=", "!=", "<>"}) {
            if (src_.compare(pos_, 2, op) == 0) {
                current_ = Token{TokenKind::kSymbol, op};
                pos_ += 2;
                return;
            }
        }
        current_ = Token{TokenKind::kSymbol, std::string(1, c)};
        ++pos_;
    }

    const std::string &src_;
    size_t pos_ = 0;
    Token current_;
};

std::string
upper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return s;
}

// ---- AST ---------------------------------------------------------------

struct SelectItem
{
    bool isCountStar = false;
    std::string column; ///< When !isCountStar.
};

struct ParsedQuery
{
    bool explain = false; ///< Leading EXPLAIN keyword.
    std::vector<SelectItem> select;
    bool selectStar = false;
    std::string table;
    std::vector<Condition> where;
    std::vector<std::string> groupBy;
    bool hasOrderBy = false;
    bool orderByCount = false;
    std::string orderByColumn;
    bool orderDescending = false;
    long limit = -1;
};

// ---- parser -------------------------------------------------------------

class Parser
{
  public:
    explicit Parser(const std::string &src) : lexer_(src) {}

    ParsedQuery
    parse()
    {
        ParsedQuery q;
        q.explain = acceptKeyword("EXPLAIN");
        expectKeyword("SELECT");
        parseSelectList(q);
        expectKeyword("FROM");
        q.table = expectIdent();
        if (acceptKeyword("WHERE"))
            parseWhere(q);
        if (acceptKeyword("GROUP")) {
            expectKeyword("BY");
            q.groupBy.push_back(expectIdent());
            while (acceptSymbol(","))
                q.groupBy.push_back(expectIdent());
        }
        if (acceptKeyword("ORDER")) {
            expectKeyword("BY");
            q.hasOrderBy = true;
            if (peekKeyword("COUNT")) {
                parseCountStar();
                q.orderByCount = true;
            } else {
                q.orderByColumn = expectIdent();
            }
            if (acceptKeyword("DESC"))
                q.orderDescending = true;
            else
                acceptKeyword("ASC");
        }
        if (acceptKeyword("LIMIT")) {
            Token t = lexer_.next();
            NAZAR_CHECK(t.kind == TokenKind::kNumber,
                        "LIMIT expects a number");
            q.limit = std::stol(t.text);
            NAZAR_CHECK(q.limit >= 0, "LIMIT must be non-negative");
        }
        acceptSymbol(";");
        NAZAR_CHECK(lexer_.peek().kind == TokenKind::kEnd,
                    "unexpected trailing SQL: " + lexer_.peek().text);
        return q;
    }

  private:
    void
    parseSelectList(ParsedQuery &q)
    {
        if (acceptSymbol("*")) {
            q.selectStar = true;
            return;
        }
        do {
            SelectItem item;
            if (peekKeyword("COUNT")) {
                parseCountStar();
                item.isCountStar = true;
            } else {
                item.column = expectIdent();
            }
            q.select.push_back(std::move(item));
        } while (acceptSymbol(","));
    }

    void
    parseCountStar()
    {
        expectKeyword("COUNT");
        NAZAR_CHECK(acceptSymbol("("), "expected ( after COUNT");
        NAZAR_CHECK(acceptSymbol("*"), "expected * in COUNT(*)");
        NAZAR_CHECK(acceptSymbol(")"), "expected ) after COUNT(*");
    }

    void
    parseWhere(ParsedQuery &q)
    {
        do {
            Condition cond;
            cond.column = expectIdent();
            cond.op = parseOp();
            cond.value = parseLiteral();
            q.where.push_back(std::move(cond));
        } while (acceptKeyword("AND"));
    }

    CompareOp
    parseOp()
    {
        Token t = lexer_.next();
        NAZAR_CHECK(t.kind == TokenKind::kSymbol,
                    "expected a comparison operator, got: " + t.text);
        if (t.text == "=")
            return CompareOp::kEq;
        if (t.text == "!=" || t.text == "<>")
            return CompareOp::kNe;
        if (t.text == "<")
            return CompareOp::kLt;
        if (t.text == "<=")
            return CompareOp::kLe;
        if (t.text == ">")
            return CompareOp::kGt;
        if (t.text == ">=")
            return CompareOp::kGe;
        throw NazarError("unknown operator: " + t.text);
    }

    Value
    parseLiteral()
    {
        Token t = lexer_.next();
        switch (t.kind) {
          case TokenKind::kNumber:
            if (t.text.find('.') != std::string::npos)
                return Value(std::stod(t.text));
            return Value(static_cast<int64_t>(std::stoll(t.text)));
          case TokenKind::kString:
            return Value(t.text);
          case TokenKind::kIdent: {
            std::string u = upper(t.text);
            if (u == "TRUE")
                return Value(true);
            if (u == "FALSE")
                return Value(false);
            if (u == "NULL")
                return Value();
            throw NazarError("expected a literal, got: " + t.text);
          }
          default:
            throw NazarError("expected a literal, got: " + t.text);
        }
    }

    bool
    peekKeyword(const char *kw) const
    {
        return lexer_.peek().kind == TokenKind::kIdent &&
               upper(lexer_.peek().text) == kw;
    }

    bool
    acceptKeyword(const char *kw)
    {
        if (peekKeyword(kw)) {
            lexer_.next();
            return true;
        }
        return false;
    }

    void
    expectKeyword(const char *kw)
    {
        NAZAR_CHECK(acceptKeyword(kw),
                    std::string("expected ") + kw + ", got: " +
                        lexer_.peek().text);
    }

    bool
    acceptSymbol(const char *sym)
    {
        if (lexer_.peek().kind == TokenKind::kSymbol &&
            lexer_.peek().text == sym) {
            lexer_.next();
            return true;
        }
        return false;
    }

    std::string
    expectIdent()
    {
        Token t = lexer_.next();
        NAZAR_CHECK(t.kind == TokenKind::kIdent,
                    "expected an identifier, got: " + t.text);
        return t.text;
    }

    Lexer lexer_;
};

// ---- bind + column-prune -------------------------------------------------

/** One output column of the plan. */
struct PlanOutput
{
    bool isCountStar = false;
    size_t col = 0;     ///< Schema index when !isCountStar.
    std::string name;   ///< Result column name.
};

/** The bound, pruned query plan. */
struct SqlPlan
{
    std::vector<BoundPredicate> where; ///< Literals resolved to ids.
    std::vector<size_t> groupBy;       ///< Schema column indices.
    std::vector<PlanOutput> outputs;
    bool hasOrderBy = false;
    bool orderByCount = false;
    bool orderDescending = false;
    std::string orderByColumn;
    long limit = -1;
    /** Column-prune result: the schema indices this query reads
     *  (predicates + group keys + projections + order key), sorted. */
    std::vector<size_t> readCols;
};

/**
 * Bind the parsed query against the table: validate names, resolve
 * them to schema indices, resolve the select list (the grouped
 * default list is group keys then COUNT(*)), bind every WHERE literal
 * into its column's id space, and record the pruned read set.
 */
SqlPlan
bindQuery(const Table &table, const ParsedQuery &parsed)
{
    const Schema &schema = table.schema();
    auto check_col = [&](const std::string &name) {
        NAZAR_CHECK(schema.has(name), "no such column: " + name);
    };
    for (const auto &item : parsed.select)
        if (!item.isCountStar)
            check_col(item.column);
    for (const auto &col : parsed.groupBy)
        check_col(col);
    if (parsed.hasOrderBy && !parsed.orderByCount)
        check_col(parsed.orderByColumn);

    SqlPlan plan;
    plan.where = bindConditions(table, parsed.where);
    for (const auto &name : parsed.groupBy)
        plan.groupBy.push_back(schema.indexOf(name));
    plan.hasOrderBy = parsed.hasOrderBy;
    plan.orderByCount = parsed.orderByCount;
    plan.orderDescending = parsed.orderDescending;
    plan.orderByColumn = parsed.orderByColumn;
    plan.limit = parsed.limit;

    // Resolve the select list into plan outputs.
    if (!parsed.groupBy.empty()) {
        // Grouped: selected columns must be group keys or COUNT(*);
        // the default list is every group key then the count.
        std::vector<SelectItem> items = parsed.select;
        if (parsed.selectStar || items.empty()) {
            items.clear();
            for (const auto &name : parsed.groupBy)
                items.push_back(SelectItem{false, name});
            items.push_back(SelectItem{true, ""});
        }
        for (const auto &item : items) {
            if (item.isCountStar) {
                plan.outputs.push_back(PlanOutput{true, 0, "count"});
                continue;
            }
            bool is_key =
                std::find(parsed.groupBy.begin(), parsed.groupBy.end(),
                          item.column) != parsed.groupBy.end();
            NAZAR_CHECK(is_key, "selected column " + item.column +
                                    " must appear in GROUP BY");
            plan.outputs.push_back(
                PlanOutput{false, schema.indexOf(item.column),
                           item.column});
        }
    } else if (parsed.select.size() == 1 &&
               parsed.select[0].isCountStar) {
        plan.outputs.push_back(PlanOutput{true, 0, "count"});
    } else {
        NAZAR_CHECK(parsed.selectStar ||
                        std::none_of(parsed.select.begin(),
                                     parsed.select.end(),
                                     [](const SelectItem &i) {
                                         return i.isCountStar;
                                     }),
                    "COUNT(*) mixed with columns requires GROUP BY");
        if (parsed.selectStar) {
            for (size_t c = 0; c < schema.columnCount(); ++c)
                plan.outputs.push_back(
                    PlanOutput{false, c, schema.column(c).name});
        } else {
            for (const auto &item : parsed.select)
                plan.outputs.push_back(
                    PlanOutput{false, schema.indexOf(item.column),
                               item.column});
        }
    }

    // Column prune: the scan only ever touches these id vectors.
    std::vector<bool> needed(schema.columnCount(), false);
    for (const auto &p : plan.where)
        needed[p.col] = true;
    for (size_t gc : plan.groupBy)
        needed[gc] = true;
    for (const auto &out : plan.outputs)
        if (!out.isCountStar)
            needed[out.col] = true;
    if (plan.hasOrderBy && !plan.orderByCount)
        needed[schema.indexOf(plan.orderByColumn)] = true;
    for (size_t c = 0; c < needed.size(); ++c)
        if (needed[c])
            plan.readCols.push_back(c);
    return plan;
}

// ---- execute -------------------------------------------------------------

/** ORDER BY + LIMIT over assembled result rows (shared by the
 *  vectorized and naive executors — identical semantics). */
void
orderAndLimit(SqlResult &result, bool has_order_by, bool order_by_count,
              bool descending, const std::string &order_column,
              long limit)
{
    if (has_order_by) {
        size_t key = order_by_count ? result.columnIndex("count")
                                    : result.columnIndex(order_column);
        std::stable_sort(result.rows.begin(), result.rows.end(),
                         [&](const Row &a, const Row &b) {
                             return descending ? b[key] < a[key]
                                               : a[key] < b[key];
                         });
    }
    if (limit >= 0 &&
        result.rows.size() > static_cast<size_t>(limit))
        result.rows.resize(static_cast<size_t>(limit));
}

/** Vectorized execution of a bound plan. */
SqlResult
executePlan(const Table &table, const SqlPlan &plan)
{
    NAZAR_SPAN("driftlog.sql.execute");
    SqlResult result;
    for (const auto &out : plan.outputs)
        result.columns.push_back(out.name);

    if (!plan.groupBy.empty()) {
        if (plan.groupBy.size() == 1) {
            // Dense per-id counts, emitted in id order (== the sorted
            // Value order the old map-based group-by produced).
            size_t gc = plan.groupBy[0];
            std::vector<size_t> counts =
                groupCountsSingle(table, plan.where, gc);
            const Column &col = table.column(gc);
            for (size_t id = 0; id < counts.size(); ++id) {
                if (counts[id] == 0)
                    continue;
                Row row;
                for (const auto &out : plan.outputs) {
                    if (out.isCountStar)
                        row.push_back(
                            Value(static_cast<int64_t>(counts[id])));
                    else
                        row.push_back(col.dictValue(
                            static_cast<Column::Id>(id)));
                }
                result.rows.push_back(std::move(row));
            }
        } else {
            auto grouped =
                groupCountsMulti(table, plan.where, plan.groupBy);
            for (const auto &[key_ids, count] : grouped) {
                Row row;
                for (const auto &out : plan.outputs) {
                    if (out.isCountStar) {
                        row.push_back(
                            Value(static_cast<int64_t>(count)));
                        continue;
                    }
                    size_t key_pos = static_cast<size_t>(
                        std::find(plan.groupBy.begin(),
                                  plan.groupBy.end(), out.col) -
                        plan.groupBy.begin());
                    row.push_back(table.column(out.col)
                                      .dictValue(key_ids[key_pos]));
                }
                result.rows.push_back(std::move(row));
            }
        }
    } else if (plan.outputs.size() == 1 && plan.outputs[0].isCountStar) {
        // Plain aggregation: no selection vector materialized.
        result.rows.push_back(Row{Value(static_cast<int64_t>(
            countMatching(table, plan.where)))});
    } else {
        // Plain projection: selection vector, then per-column
        // dictionary decode of only the projected columns.
        std::vector<size_t> row_ids = selectMatching(table, plan.where);
        result.rows.reserve(row_ids.size());
        for (size_t r : row_ids) {
            Row row;
            row.reserve(plan.outputs.size());
            for (const auto &out : plan.outputs)
                row.push_back(table.column(out.col).at(r));
            result.rows.push_back(std::move(row));
        }
    }

    orderAndLimit(result, plan.hasOrderBy, plan.orderByCount,
                  plan.orderDescending, plan.orderByColumn, plan.limit);
    return result;
}

// ---- EXPLAIN -------------------------------------------------------------

/** Render the bound plan, one line per result row. */
SqlResult
renderPlan(const Table &table, const SqlPlan &plan,
           const std::string &table_name)
{
    const Schema &schema = table.schema();
    std::vector<std::string> lines;

    std::ostringstream scan;
    scan << "scan " << table_name << ": read " << plan.readCols.size()
         << "/" << schema.columnCount() << " columns (";
    for (size_t i = 0; i < plan.readCols.size(); ++i)
        scan << (i ? ", " : "")
             << schema.column(plan.readCols[i]).name;
    scan << ")";
    size_t pruned = schema.columnCount() - plan.readCols.size();
    if (pruned > 0) {
        scan << ", pruned " << pruned << " (";
        size_t emitted = 0, read_pos = 0;
        for (size_t c = 0; c < schema.columnCount(); ++c) {
            if (read_pos < plan.readCols.size() &&
                plan.readCols[read_pos] == c) {
                ++read_pos;
                continue;
            }
            scan << (emitted++ ? ", " : "") << schema.column(c).name;
        }
        scan << ")";
    }
    lines.push_back(scan.str());

    for (const auto &p : plan.where)
        lines.push_back(describePredicate(table, p));
    if (anyImpossible(plan.where))
        lines.push_back("result: 0 rows without scanning");

    if (!plan.groupBy.empty()) {
        std::ostringstream os;
        os << "group by ";
        for (size_t i = 0; i < plan.groupBy.size(); ++i)
            os << (i ? ", " : "")
               << schema.column(plan.groupBy[i]).name << "(dict "
               << table.column(plan.groupBy[i]).dictSize() << ")";
        os << (plan.groupBy.size() == 1 ? ": dense per-id counts"
                                        : ": id-tuple counts");
        lines.push_back(os.str());
    }

    std::ostringstream proj;
    proj << (plan.groupBy.empty() && plan.outputs.size() == 1 &&
                     plan.outputs[0].isCountStar
                 ? "aggregate "
                 : "project ");
    for (size_t i = 0; i < plan.outputs.size(); ++i)
        proj << (i ? ", " : "")
             << (plan.outputs[i].isCountStar ? "COUNT(*)"
                                             : plan.outputs[i].name);
    lines.push_back(proj.str());

    if (plan.hasOrderBy) {
        lines.push_back(
            std::string("order by ") +
            (plan.orderByCount ? "COUNT(*)" : plan.orderByColumn) +
            (plan.orderDescending ? " desc" : " asc"));
    }
    if (plan.limit >= 0)
        lines.push_back("limit " + std::to_string(plan.limit));

    SqlResult result;
    result.columns = {"plan"};
    for (auto &line : lines)
        result.rows.push_back(Row{Value(std::move(line))});
    return result;
}

} // namespace

// ---- result helpers ------------------------------------------------------

size_t
SqlResult::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < columns.size(); ++i)
        if (columns[i] == name)
            return i;
    throw NazarError("no such result column: " + name);
}

const Value &
SqlResult::at(size_t row, const std::string &column) const
{
    NAZAR_CHECK(row < rows.size(), "result row out of range");
    return rows[row][columnIndex(column)];
}

std::string
SqlResult::toString() const
{
    std::vector<size_t> widths(columns.size());
    for (size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    std::vector<std::vector<std::string>> rendered;
    for (const auto &row : rows) {
        std::vector<std::string> cells;
        for (size_t c = 0; c < row.size(); ++c) {
            cells.push_back(row[c].toString());
            widths[c] = std::max(widths[c], cells.back().size());
        }
        rendered.push_back(std::move(cells));
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c ? " | " : "") << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << "\n";
    };
    emit(columns);
    for (const auto &cells : rendered)
        emit(cells);
    return os.str();
}

// ---- entry points --------------------------------------------------------

SqlResult
executeSql(const Table &table, const std::string &table_name,
           const std::string &query_text)
{
    ParsedQuery parsed = Parser(query_text).parse();
    NAZAR_CHECK(parsed.table == table_name,
                "unknown table: " + parsed.table);
    SqlPlan plan = bindQuery(table, parsed);
    if (parsed.explain)
        return renderPlan(table, plan, table_name);
    return executePlan(table, plan);
}

SqlResult
executeSqlNaive(const Table &table, const std::string &table_name,
                const std::string &query_text)
{
    ParsedQuery parsed = Parser(query_text).parse();
    NAZAR_CHECK(parsed.table == table_name,
                "unknown table: " + parsed.table);
    NAZAR_CHECK(!parsed.explain,
                "EXPLAIN requires the planned executor");

    // Validate referenced columns (same messages as the binder).
    auto check_col = [&](const std::string &name) {
        NAZAR_CHECK(table.schema().has(name), "no such column: " + name);
    };
    for (const auto &item : parsed.select)
        if (!item.isCountStar)
            check_col(item.column);
    for (const auto &col : parsed.groupBy)
        check_col(col);
    if (parsed.hasOrderBy && !parsed.orderByCount)
        check_col(parsed.orderByColumn);

    // Row-at-a-time WHERE: every cell is decoded and compared as a
    // Value. (The vectorized engine must agree with this exactly.)
    std::vector<Condition> conds = parsed.where;
    std::vector<size_t> cond_cols;
    for (auto &cond : conds) {
        size_t c = table.schema().indexOf(cond.column);
        cond_cols.push_back(c);
        if (table.schema().column(c).type == ValueType::kDouble &&
            cond.value.type() == ValueType::kInt)
            cond.value = Value(cond.value.asDouble());
    }
    std::vector<size_t> row_ids;
    for (size_t r = 0; r < table.rowCount(); ++r) {
        bool ok = true;
        for (size_t i = 0; i < conds.size(); ++i) {
            if (!conds[i].matches(table.at(r, cond_cols[i]))) {
                ok = false;
                break;
            }
        }
        if (ok)
            row_ids.push_back(r);
    }

    SqlResult result;

    if (!parsed.groupBy.empty()) {
        for (const auto &item : parsed.select) {
            if (item.isCountStar)
                continue;
            bool is_key =
                std::find(parsed.groupBy.begin(), parsed.groupBy.end(),
                          item.column) != parsed.groupBy.end();
            NAZAR_CHECK(is_key, "selected column " + item.column +
                                    " must appear in GROUP BY");
        }
        std::vector<size_t> group_cols;
        for (const auto &name : parsed.groupBy)
            group_cols.push_back(table.schema().indexOf(name));

        std::map<std::vector<Value>, size_t> groups;
        for (size_t r : row_ids) {
            std::vector<Value> key;
            key.reserve(group_cols.size());
            for (size_t gc : group_cols)
                key.push_back(table.at(r, gc));
            ++groups[key];
        }

        std::vector<SelectItem> items = parsed.select;
        if (parsed.selectStar || items.empty()) {
            items.clear();
            for (const auto &name : parsed.groupBy)
                items.push_back(SelectItem{false, name});
            items.push_back(SelectItem{true, ""});
        }
        for (const auto &item : items)
            result.columns.push_back(item.isCountStar ? "count"
                                                      : item.column);

        for (const auto &[key, count] : groups) {
            Row row;
            for (const auto &item : items) {
                if (item.isCountStar) {
                    row.push_back(Value(static_cast<int64_t>(count)));
                } else {
                    size_t key_pos = static_cast<size_t>(
                        std::find(parsed.groupBy.begin(),
                                  parsed.groupBy.end(), item.column) -
                        parsed.groupBy.begin());
                    row.push_back(key[key_pos]);
                }
            }
            result.rows.push_back(std::move(row));
        }
    } else if (parsed.select.size() == 1 &&
               parsed.select[0].isCountStar) {
        result.columns = {"count"};
        result.rows.push_back(
            Row{Value(static_cast<int64_t>(row_ids.size()))});
    } else {
        NAZAR_CHECK(parsed.selectStar ||
                        std::none_of(parsed.select.begin(),
                                     parsed.select.end(),
                                     [](const SelectItem &i) {
                                         return i.isCountStar;
                                     }),
                    "COUNT(*) mixed with columns requires GROUP BY");
        std::vector<size_t> cols;
        if (parsed.selectStar) {
            for (size_t c = 0; c < table.schema().columnCount(); ++c) {
                cols.push_back(c);
                result.columns.push_back(table.schema().column(c).name);
            }
        } else {
            for (const auto &item : parsed.select) {
                cols.push_back(table.schema().indexOf(item.column));
                result.columns.push_back(item.column);
            }
        }
        for (size_t r : row_ids) {
            Row row;
            for (size_t c : cols)
                row.push_back(table.at(r, c));
            result.rows.push_back(std::move(row));
        }
    }

    orderAndLimit(result, parsed.hasOrderBy, parsed.orderByCount,
                  parsed.orderDescending, parsed.orderByColumn,
                  parsed.limit);
    return result;
}

} // namespace nazar::driftlog
