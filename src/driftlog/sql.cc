/**
 * @file
 * Implementation of the SQL dialect: tokenizer, parser, executor.
 */
#include "sql.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "common/error.h"
#include "driftlog/query.h"

namespace nazar::driftlog {

namespace {

// ---- tokenizer ----------------------------------------------------------

enum class TokenKind {
    kIdent,   ///< bare identifier or keyword
    kNumber,  ///< integer or double literal
    kString,  ///< single-quoted string literal
    kSymbol,  ///< punctuation / operator
    kEnd,
};

struct Token
{
    TokenKind kind = TokenKind::kEnd;
    std::string text; ///< Raw text (uppercased for idents? no — raw).
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) { advance(); }

    const Token &peek() const { return current_; }

    Token
    next()
    {
        Token t = current_;
        advance();
        return t;
    }

  private:
    void
    advance()
    {
        while (pos_ < src_.size() &&
               std::isspace(static_cast<unsigned char>(src_[pos_])))
            ++pos_;
        if (pos_ >= src_.size()) {
            current_ = Token{TokenKind::kEnd, ""};
            return;
        }
        char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_'))
                ++pos_;
            current_ =
                Token{TokenKind::kIdent, src_.substr(start, pos_ - start)};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && pos_ + 1 < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
            size_t start = pos_;
            ++pos_;
            while (pos_ < src_.size() &&
                   (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '.'))
                ++pos_;
            current_ =
                Token{TokenKind::kNumber, src_.substr(start, pos_ - start)};
            return;
        }
        if (c == '\'') {
            ++pos_;
            size_t start = pos_;
            while (pos_ < src_.size() && src_[pos_] != '\'')
                ++pos_;
            NAZAR_CHECK(pos_ < src_.size(),
                        "unterminated string literal in SQL");
            current_ =
                Token{TokenKind::kString, src_.substr(start, pos_ - start)};
            ++pos_; // closing quote
            return;
        }
        // Multi-char operators first.
        for (const char *op : {"<=", ">=", "!=", "<>"}) {
            if (src_.compare(pos_, 2, op) == 0) {
                current_ = Token{TokenKind::kSymbol, op};
                pos_ += 2;
                return;
            }
        }
        current_ = Token{TokenKind::kSymbol, std::string(1, c)};
        ++pos_;
    }

    const std::string &src_;
    size_t pos_ = 0;
    Token current_;
};

std::string
upper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return s;
}

// ---- AST ---------------------------------------------------------------

struct SelectItem
{
    bool isCountStar = false;
    std::string column; ///< When !isCountStar.
};

struct ParsedQuery
{
    std::vector<SelectItem> select;
    bool selectStar = false;
    std::string table;
    std::vector<Condition> where;
    std::vector<std::string> groupBy;
    bool hasOrderBy = false;
    bool orderByCount = false;
    std::string orderByColumn;
    bool orderDescending = false;
    long limit = -1;
};

// ---- parser -------------------------------------------------------------

class Parser
{
  public:
    explicit Parser(const std::string &src) : lexer_(src) {}

    ParsedQuery
    parse()
    {
        ParsedQuery q;
        expectKeyword("SELECT");
        parseSelectList(q);
        expectKeyword("FROM");
        q.table = expectIdent();
        if (acceptKeyword("WHERE"))
            parseWhere(q);
        if (acceptKeyword("GROUP")) {
            expectKeyword("BY");
            q.groupBy.push_back(expectIdent());
            while (acceptSymbol(","))
                q.groupBy.push_back(expectIdent());
        }
        if (acceptKeyword("ORDER")) {
            expectKeyword("BY");
            q.hasOrderBy = true;
            if (peekKeyword("COUNT")) {
                parseCountStar();
                q.orderByCount = true;
            } else {
                q.orderByColumn = expectIdent();
            }
            if (acceptKeyword("DESC"))
                q.orderDescending = true;
            else
                acceptKeyword("ASC");
        }
        if (acceptKeyword("LIMIT")) {
            Token t = lexer_.next();
            NAZAR_CHECK(t.kind == TokenKind::kNumber,
                        "LIMIT expects a number");
            q.limit = std::stol(t.text);
            NAZAR_CHECK(q.limit >= 0, "LIMIT must be non-negative");
        }
        acceptSymbol(";");
        NAZAR_CHECK(lexer_.peek().kind == TokenKind::kEnd,
                    "unexpected trailing SQL: " + lexer_.peek().text);
        return q;
    }

  private:
    void
    parseSelectList(ParsedQuery &q)
    {
        if (acceptSymbol("*")) {
            q.selectStar = true;
            return;
        }
        do {
            SelectItem item;
            if (peekKeyword("COUNT")) {
                parseCountStar();
                item.isCountStar = true;
            } else {
                item.column = expectIdent();
            }
            q.select.push_back(std::move(item));
        } while (acceptSymbol(","));
    }

    void
    parseCountStar()
    {
        expectKeyword("COUNT");
        NAZAR_CHECK(acceptSymbol("("), "expected ( after COUNT");
        NAZAR_CHECK(acceptSymbol("*"), "expected * in COUNT(*)");
        NAZAR_CHECK(acceptSymbol(")"), "expected ) after COUNT(*");
    }

    void
    parseWhere(ParsedQuery &q)
    {
        do {
            Condition cond;
            cond.column = expectIdent();
            cond.op = parseOp();
            cond.value = parseLiteral();
            q.where.push_back(std::move(cond));
        } while (acceptKeyword("AND"));
    }

    CompareOp
    parseOp()
    {
        Token t = lexer_.next();
        NAZAR_CHECK(t.kind == TokenKind::kSymbol,
                    "expected a comparison operator, got: " + t.text);
        if (t.text == "=")
            return CompareOp::kEq;
        if (t.text == "!=" || t.text == "<>")
            return CompareOp::kNe;
        if (t.text == "<")
            return CompareOp::kLt;
        if (t.text == "<=")
            return CompareOp::kLe;
        if (t.text == ">")
            return CompareOp::kGt;
        if (t.text == ">=")
            return CompareOp::kGe;
        throw NazarError("unknown operator: " + t.text);
    }

    Value
    parseLiteral()
    {
        Token t = lexer_.next();
        switch (t.kind) {
          case TokenKind::kNumber:
            if (t.text.find('.') != std::string::npos)
                return Value(std::stod(t.text));
            return Value(static_cast<int64_t>(std::stoll(t.text)));
          case TokenKind::kString:
            return Value(t.text);
          case TokenKind::kIdent: {
            std::string u = upper(t.text);
            if (u == "TRUE")
                return Value(true);
            if (u == "FALSE")
                return Value(false);
            if (u == "NULL")
                return Value();
            throw NazarError("expected a literal, got: " + t.text);
          }
          default:
            throw NazarError("expected a literal, got: " + t.text);
        }
    }

    bool
    peekKeyword(const char *kw) const
    {
        return lexer_.peek().kind == TokenKind::kIdent &&
               upper(lexer_.peek().text) == kw;
    }

    bool
    acceptKeyword(const char *kw)
    {
        if (peekKeyword(kw)) {
            lexer_.next();
            return true;
        }
        return false;
    }

    void
    expectKeyword(const char *kw)
    {
        NAZAR_CHECK(acceptKeyword(kw),
                    std::string("expected ") + kw + ", got: " +
                        lexer_.peek().text);
    }

    bool
    acceptSymbol(const char *sym)
    {
        if (lexer_.peek().kind == TokenKind::kSymbol &&
            lexer_.peek().text == sym) {
            lexer_.next();
            return true;
        }
        return false;
    }

    std::string
    expectIdent()
    {
        Token t = lexer_.next();
        NAZAR_CHECK(t.kind == TokenKind::kIdent,
                    "expected an identifier, got: " + t.text);
        return t.text;
    }

    Lexer lexer_;
};

} // namespace

// ---- result helpers ------------------------------------------------------

size_t
SqlResult::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < columns.size(); ++i)
        if (columns[i] == name)
            return i;
    throw NazarError("no such result column: " + name);
}

const Value &
SqlResult::at(size_t row, const std::string &column) const
{
    NAZAR_CHECK(row < rows.size(), "result row out of range");
    return rows[row][columnIndex(column)];
}

std::string
SqlResult::toString() const
{
    std::vector<size_t> widths(columns.size());
    for (size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    std::vector<std::vector<std::string>> rendered;
    for (const auto &row : rows) {
        std::vector<std::string> cells;
        for (size_t c = 0; c < row.size(); ++c) {
            cells.push_back(row[c].toString());
            widths[c] = std::max(widths[c], cells.back().size());
        }
        rendered.push_back(std::move(cells));
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c ? " | " : "") << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << "\n";
    };
    emit(columns);
    for (const auto &cells : rendered)
        emit(cells);
    return os.str();
}

// ---- executor -------------------------------------------------------------

SqlResult
executeSql(const Table &table, const std::string &table_name,
           const std::string &query_text)
{
    ParsedQuery parsed = Parser(query_text).parse();
    NAZAR_CHECK(parsed.table == table_name,
                "unknown table: " + parsed.table);

    // Validate referenced columns.
    auto check_col = [&](const std::string &name) {
        NAZAR_CHECK(table.schema().has(name), "no such column: " + name);
    };
    for (const auto &item : parsed.select)
        if (!item.isCountStar)
            check_col(item.column);
    for (const auto &col : parsed.groupBy)
        check_col(col);
    if (parsed.hasOrderBy && !parsed.orderByCount)
        check_col(parsed.orderByColumn);

    // WHERE filtering via the query layer.
    Query q(table);
    for (const auto &cond : parsed.where)
        q = q.where(cond.column, cond.op, cond.value);
    std::vector<size_t> row_ids = q.select();

    SqlResult result;

    if (!parsed.groupBy.empty()) {
        // Grouped: selected columns must be group keys or COUNT(*).
        for (const auto &item : parsed.select) {
            if (item.isCountStar)
                continue;
            bool is_key =
                std::find(parsed.groupBy.begin(), parsed.groupBy.end(),
                          item.column) != parsed.groupBy.end();
            NAZAR_CHECK(is_key, "selected column " + item.column +
                                    " must appear in GROUP BY");
        }
        std::vector<size_t> group_cols;
        for (const auto &name : parsed.groupBy)
            group_cols.push_back(table.schema().indexOf(name));

        std::map<std::vector<Value>, size_t> groups;
        for (size_t r : row_ids) {
            std::vector<Value> key;
            key.reserve(group_cols.size());
            for (size_t gc : group_cols)
                key.push_back(table.column(gc)[r]);
            ++groups[key];
        }

        // Default select list: group keys then COUNT(*).
        std::vector<SelectItem> items = parsed.select;
        if (parsed.selectStar || items.empty()) {
            items.clear();
            for (const auto &name : parsed.groupBy)
                items.push_back(SelectItem{false, name});
            items.push_back(SelectItem{true, ""});
        }
        for (const auto &item : items)
            result.columns.push_back(item.isCountStar ? "count"
                                                      : item.column);

        for (const auto &[key, count] : groups) {
            Row row;
            for (const auto &item : items) {
                if (item.isCountStar) {
                    row.push_back(Value(static_cast<int64_t>(count)));
                } else {
                    size_t key_pos = static_cast<size_t>(
                        std::find(parsed.groupBy.begin(),
                                  parsed.groupBy.end(), item.column) -
                        parsed.groupBy.begin());
                    row.push_back(key[key_pos]);
                }
            }
            result.rows.push_back(std::move(row));
        }
    } else if (parsed.select.size() == 1 &&
               parsed.select[0].isCountStar) {
        // Plain aggregation: SELECT COUNT(*) FROM ...
        result.columns = {"count"};
        result.rows.push_back(
            Row{Value(static_cast<int64_t>(row_ids.size()))});
    } else {
        // Plain projection.
        NAZAR_CHECK(parsed.selectStar ||
                        std::none_of(parsed.select.begin(),
                                     parsed.select.end(),
                                     [](const SelectItem &i) {
                                         return i.isCountStar;
                                     }),
                    "COUNT(*) mixed with columns requires GROUP BY");
        std::vector<size_t> cols;
        if (parsed.selectStar) {
            for (size_t c = 0; c < table.schema().columnCount(); ++c) {
                cols.push_back(c);
                result.columns.push_back(table.schema().column(c).name);
            }
        } else {
            for (const auto &item : parsed.select) {
                cols.push_back(table.schema().indexOf(item.column));
                result.columns.push_back(item.column);
            }
        }
        for (size_t r : row_ids) {
            Row row;
            for (size_t c : cols)
                row.push_back(table.column(c)[r]);
            result.rows.push_back(std::move(row));
        }
    }

    // ORDER BY over the result rows.
    if (parsed.hasOrderBy) {
        size_t key;
        if (parsed.orderByCount) {
            key = result.columnIndex("count");
        } else {
            key = result.columnIndex(parsed.orderByColumn);
        }
        std::stable_sort(result.rows.begin(), result.rows.end(),
                         [&](const Row &a, const Row &b) {
                             return parsed.orderDescending
                                        ? b[key] < a[key]
                                        : a[key] < b[key];
                         });
    }

    if (parsed.limit >= 0 &&
        result.rows.size() > static_cast<size_t>(parsed.limit))
        result.rows.resize(static_cast<size_t>(parsed.limit));

    return result;
}

} // namespace nazar::driftlog
