/**
 * @file
 * A small SQL dialect over drift-log tables.
 *
 * The paper's prototype runs frequent-itemset mining as "a set of SQL
 * queries" with Count aggregations against Amazon Aurora (§4). This
 * module provides the offline equivalent: a tokenizer, a
 * recursive-descent parser and an executor for the query shapes the
 * RCA workload needs —
 *
 *   [EXPLAIN] SELECT <cols | COUNT(*) | both> FROM <table>
 *     [WHERE col <op> literal [AND ...]]
 *     [GROUP BY col [, col ...]]
 *     [ORDER BY col | COUNT(*) [ASC | DESC]]
 *     [LIMIT n]
 *
 * Operators: = != <> < <= > >=. Literals: integers, doubles,
 * single-quoted strings, true/false. Keywords are case-insensitive;
 * identifiers are snake_case column names.
 *
 * Execution is staged — parse, bind (names to column indices, literals
 * to dictionary ids), column-prune, then a vectorized scan over the
 * dictionary id vectors. `EXPLAIN SELECT ...` stops after binding and
 * returns the plan as rows of a single "plan" column: the pruned read
 * set and each predicate's resolved id range (or its 0-row
 * short-circuit when the literal is absent from the dictionary).
 */
#ifndef NAZAR_DRIFTLOG_SQL_H
#define NAZAR_DRIFTLOG_SQL_H

#include <string>
#include <vector>

#include "driftlog/table.h"

namespace nazar::driftlog {

/** A query result: named columns over materialized rows. */
struct SqlResult
{
    std::vector<std::string> columns;
    std::vector<Row> rows;

    size_t rowCount() const { return rows.size(); }

    /** Index of a result column; throws NazarError when absent. */
    size_t columnIndex(const std::string &name) const;

    /** Cell accessor by result column name. */
    const Value &at(size_t row, const std::string &column) const;

    /** Render as an aligned ASCII table (for tooling/debugging). */
    std::string toString() const;
};

/**
 * Parse and execute a query against a table.
 *
 * @param table      The data.
 * @param table_name Name the FROM clause must match (e.g. "drift_log").
 * @param query      The SQL text.
 * @throws NazarError on syntax errors, unknown columns/tables, or
 *         type-invalid comparisons.
 */
SqlResult executeSql(const Table &table, const std::string &table_name,
                     const std::string &query);

/**
 * Parse and execute a query with the retained row-at-a-time
 * interpreter: per-cell Value comparisons for WHERE, Value-keyed maps
 * for GROUP BY. No binding, no pruning, no dictionary ids.
 *
 * This is the semantic oracle for the vectorized engine — differential
 * tests assert `executeSql` and `executeSqlNaive` agree bit-for-bit on
 * randomized workloads, and benchmarks use it as the dictionary-off
 * baseline. Rejects EXPLAIN (there is no plan to render).
 */
SqlResult executeSqlNaive(const Table &table,
                          const std::string &table_name,
                          const std::string &query);

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_SQL_H
