/**
 * @file
 * Implementation of the typed cell value.
 */
#include "value.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace nazar::driftlog {

std::string
toString(ValueType type)
{
    switch (type) {
      case ValueType::kNull:   return "null";
      case ValueType::kInt:    return "int";
      case ValueType::kDouble: return "double";
      case ValueType::kBool:   return "bool";
      case ValueType::kString: return "string";
    }
    return "?";
}

ValueType
Value::type() const
{
    switch (data_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      case 3: return ValueType::kBool;
      case 4: return ValueType::kString;
    }
    return ValueType::kNull;
}

int64_t
Value::asInt() const
{
    NAZAR_CHECK(std::holds_alternative<int64_t>(data_),
                "value is not an int");
    return std::get<int64_t>(data_);
}

double
Value::asDouble() const
{
    if (std::holds_alternative<int64_t>(data_))
        return static_cast<double>(std::get<int64_t>(data_));
    NAZAR_CHECK(std::holds_alternative<double>(data_),
                "value is not a double");
    return std::get<double>(data_);
}

bool
Value::asBool() const
{
    NAZAR_CHECK(std::holds_alternative<bool>(data_),
                "value is not a bool");
    return std::get<bool>(data_);
}

const std::string &
Value::asString() const
{
    NAZAR_CHECK(std::holds_alternative<std::string>(data_),
                "value is not a string");
    return std::get<std::string>(data_);
}

std::string
Value::toString() const
{
    switch (type()) {
      case ValueType::kNull:
        return "NULL";
      case ValueType::kInt:
        return std::to_string(std::get<int64_t>(data_));
      case ValueType::kDouble: {
        std::ostringstream os;
        os << std::get<double>(data_);
        return os.str();
      }
      case ValueType::kBool:
        return std::get<bool>(data_) ? "true" : "false";
      case ValueType::kString:
        return std::get<std::string>(data_);
    }
    return "?";
}

std::strong_ordering
Value::operator<=>(const Value &other) const
{
    if (auto c = data_.index() <=> other.data_.index(); c != 0)
        return c;
    switch (type()) {
      case ValueType::kNull:
        return std::strong_ordering::equal;
      case ValueType::kInt:
        return std::get<int64_t>(data_) <=> std::get<int64_t>(other.data_);
      case ValueType::kDouble:
        // IEEE totalOrder, not `<`: a NaN cell must order consistently
        // against every other double (and equal only to its own bit
        // pattern), or the std::map aggregations in Fim::mine lose the
        // strict-weak-ordering precondition and silently merge or drop
        // keys.
        return std::strong_order(std::get<double>(data_),
                                 std::get<double>(other.data_));
      case ValueType::kBool:
        return std::get<bool>(data_) <=> std::get<bool>(other.data_);
      case ValueType::kString:
        return std::get<std::string>(data_) <=>
               std::get<std::string>(other.data_);
    }
    return std::strong_ordering::equal;
}

std::ostream &
operator<<(std::ostream &os, const Value &v)
{
    return os << v.toString();
}

std::string
formatDoubleExact(double v)
{
    if (std::isnan(v))
        return std::signbit(v) ? "-nan" : "nan";
    if (std::isinf(v))
        return std::signbit(v) ? "-inf" : "inf";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace nazar::driftlog
