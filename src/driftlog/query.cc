/**
 * @file
 * Implementation of the query layer: the fluent API binds its
 * conditions to dictionary-id space once per evaluation and executes
 * through the shared vectorized scan primitives (driftlog/plan.h).
 */
#include "query.h"

#include "common/error.h"
#include "driftlog/plan.h"
#include "obs/span.h"

namespace nazar::driftlog {

bool
Condition::matches(const Value &cell) const
{
    switch (op) {
      case CompareOp::kEq: return cell == value;
      case CompareOp::kNe: return cell != value;
      case CompareOp::kLt: return cell < value;
      case CompareOp::kLe: return cell <= value;
      case CompareOp::kGt: return cell > value;
      case CompareOp::kGe: return cell >= value;
    }
    return false;
}

Query
Query::where(const std::string &column, Value value) const
{
    return where(column, CompareOp::kEq, std::move(value));
}

Query
Query::where(const std::string &column, CompareOp op, Value value) const
{
    NAZAR_CHECK(table_->schema().has(column), "no such column: " + column);
    // Mirror Table's ingest normalization: an int literal against a
    // double column widens, so the condition compares by numeric value
    // instead of by variant index (which would order every int below
    // every double). Binding widens again (idempotently) so that SQL
    // conditions, which skip this builder, get the same treatment.
    const ColumnDef &def =
        table_->schema().column(table_->schema().indexOf(column));
    if (def.type == ValueType::kDouble && value.type() == ValueType::kInt)
        value = Value(value.asDouble());
    Query q = *this;
    q.conditions_.push_back(Condition{column, op, std::move(value)});
    return q;
}

size_t
Query::count() const
{
    NAZAR_SPAN("driftlog.query.count");
    return countMatching(*table_, bindConditions(*table_, conditions_));
}

std::vector<size_t>
Query::select() const
{
    NAZAR_SPAN("driftlog.query.select");
    return selectMatching(*table_, bindConditions(*table_, conditions_));
}

std::map<Value, size_t>
Query::groupByCount(const std::string &column) const
{
    NAZAR_SPAN("driftlog.query.group_by");
    size_t group_col = table_->schema().indexOf(column);
    // Dense per-id aggregation; the emitted map is built in id order
    // (== sorted Value order), so construction is a linear walk with
    // an end hint instead of per-row map lookups.
    std::vector<size_t> counts = groupCountsSingle(
        *table_, bindConditions(*table_, conditions_), group_col);
    const Column &gc = table_->column(group_col);
    std::map<Value, size_t> out;
    for (size_t id = 0; id < counts.size(); ++id)
        if (counts[id] > 0)
            out.emplace_hint(out.end(),
                             gc.dictValue(static_cast<Column::Id>(id)),
                             counts[id]);
    return out;
}

std::map<std::vector<Value>, size_t>
Query::groupByCount(const std::vector<std::string> &columns) const
{
    NAZAR_SPAN("driftlog.query.group_by");
    NAZAR_CHECK(!columns.empty(), "group by needs at least one column");
    std::vector<size_t> group_cols;
    group_cols.reserve(columns.size());
    for (const auto &name : columns)
        group_cols.push_back(table_->schema().indexOf(name));
    auto grouped = groupCountsMulti(
        *table_, bindConditions(*table_, conditions_), group_cols);
    std::map<std::vector<Value>, size_t> out;
    for (const auto &[ids, count] : grouped) {
        std::vector<Value> key;
        key.reserve(ids.size());
        for (size_t i = 0; i < ids.size(); ++i)
            key.push_back(table_->column(group_cols[i]).dictValue(ids[i]));
        out.emplace_hint(out.end(), std::move(key), count);
    }
    return out;
}

} // namespace nazar::driftlog
