/**
 * @file
 * Implementation of the query layer.
 */
#include "query.h"

#include "common/error.h"
#include "obs/span.h"

namespace nazar::driftlog {

bool
Condition::matches(const Value &cell) const
{
    switch (op) {
      case CompareOp::kEq: return cell == value;
      case CompareOp::kNe: return cell != value;
      case CompareOp::kLt: return cell < value;
      case CompareOp::kLe: return cell <= value;
      case CompareOp::kGt: return cell > value;
      case CompareOp::kGe: return cell >= value;
    }
    return false;
}

Query
Query::where(const std::string &column, Value value) const
{
    return where(column, CompareOp::kEq, std::move(value));
}

Query
Query::where(const std::string &column, CompareOp op, Value value) const
{
    NAZAR_CHECK(table_->schema().has(column), "no such column: " + column);
    // Mirror Table's ingest normalization: an int literal against a
    // double column widens, so the condition compares by numeric value
    // instead of by variant index (which would order every int below
    // every double).
    const ColumnDef &def =
        table_->schema().column(table_->schema().indexOf(column));
    if (def.type == ValueType::kDouble && value.type() == ValueType::kInt)
        value = Value(value.asDouble());
    Query q = *this;
    q.conditions_.push_back(Condition{column, op, std::move(value)});
    return q;
}

std::vector<size_t>
Query::resolveConditionColumns() const
{
    std::vector<size_t> cols;
    cols.reserve(conditions_.size());
    for (const auto &cond : conditions_)
        cols.push_back(table_->schema().indexOf(cond.column));
    return cols;
}

bool
Query::rowMatches(size_t row, const std::vector<size_t> &cond_cols) const
{
    for (size_t i = 0; i < conditions_.size(); ++i)
        if (!conditions_[i].matches(table_->column(cond_cols[i])[row]))
            return false;
    return true;
}

size_t
Query::count() const
{
    NAZAR_SPAN("driftlog.query.count");
    auto cols = resolveConditionColumns();
    size_t n = 0;
    for (size_t r = 0; r < table_->rowCount(); ++r)
        if (rowMatches(r, cols))
            ++n;
    return n;
}

std::vector<size_t>
Query::select() const
{
    NAZAR_SPAN("driftlog.query.select");
    auto cols = resolveConditionColumns();
    std::vector<size_t> out;
    for (size_t r = 0; r < table_->rowCount(); ++r)
        if (rowMatches(r, cols))
            out.push_back(r);
    return out;
}

std::map<Value, size_t>
Query::groupByCount(const std::string &column) const
{
    NAZAR_SPAN("driftlog.query.group_by");
    size_t group_col = table_->schema().indexOf(column);
    auto cols = resolveConditionColumns();
    std::map<Value, size_t> out;
    const auto &data = table_->column(group_col);
    for (size_t r = 0; r < table_->rowCount(); ++r)
        if (rowMatches(r, cols))
            ++out[data[r]];
    return out;
}

std::map<std::vector<Value>, size_t>
Query::groupByCount(const std::vector<std::string> &columns) const
{
    NAZAR_SPAN("driftlog.query.group_by");
    NAZAR_CHECK(!columns.empty(), "group by needs at least one column");
    std::vector<size_t> group_cols;
    group_cols.reserve(columns.size());
    for (const auto &name : columns)
        group_cols.push_back(table_->schema().indexOf(name));
    auto cols = resolveConditionColumns();
    std::map<std::vector<Value>, size_t> out;
    for (size_t r = 0; r < table_->rowCount(); ++r) {
        if (!rowMatches(r, cols))
            continue;
        std::vector<Value> key;
        key.reserve(group_cols.size());
        for (size_t gc : group_cols)
            key.push_back(table_->column(gc)[r]);
        ++out[key];
    }
    return out;
}

} // namespace nazar::driftlog
