/**
 * @file
 * Typed cell values of the drift-log column store.
 */
#ifndef NAZAR_DRIFTLOG_VALUE_H
#define NAZAR_DRIFTLOG_VALUE_H

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>

namespace nazar::driftlog {

/** Column data types supported by the store. */
enum class ValueType { kNull = 0, kInt, kDouble, kBool, kString };

/** Printable type name. */
std::string toString(ValueType type);

/** A dynamically typed cell value. */
class Value
{
  public:
    Value() = default;
    Value(int64_t v) : data_(v) {}                     // NOLINT(implicit)
    Value(int v) : data_(static_cast<int64_t>(v)) {}   // NOLINT(implicit)
    Value(double v) : data_(v) {}                      // NOLINT(implicit)
    Value(bool v) : data_(v) {}                        // NOLINT(implicit)
    Value(std::string v) : data_(std::move(v)) {}      // NOLINT(implicit)
    Value(const char *v) : data_(std::string(v)) {}    // NOLINT(implicit)

    ValueType type() const;

    bool isNull() const { return type() == ValueType::kNull; }

    /** Typed accessors; throw NazarError on type mismatch. */
    int64_t asInt() const;
    double asDouble() const;
    bool asBool() const;
    const std::string &asString() const;

    /** Render for display / serialization. */
    std::string toString() const;

    /**
     * Total order across all cells: by type first, then by value.
     * Doubles use IEEE totalOrder (std::strong_order), so NaN sorts
     * consistently (above +inf, below nothing) instead of comparing
     * "equal" to everything — a strict-weak-ordering requirement for
     * every std::map/std::set keyed on Value (Table::distinct, the
     * query group-bys, and the FIM level-1 aggregation).
     */
    std::strong_ordering operator<=>(const Value &other) const;

    /** Agrees with <=> by construction: equal iff same type and same
     *  value bits (NaN == NaN with the same payload; -0.0 != +0.0). */
    bool operator==(const Value &other) const
    {
        return (*this <=> other) == 0;
    }

  private:
    std::variant<std::monostate, int64_t, double, bool, std::string> data_;
};

std::ostream &operator<<(std::ostream &os, const Value &v);

/**
 * Full-precision decimal rendering of a double ("%.17g", with
 * nan/-nan/inf/-inf spelled so std::stod parses them back), so
 * parse(format(v)) is bit-exact for every finite value and preserves
 * the sign of NaN and infinity. Value::toString keeps the short
 * display form; serialization paths (CSV export, version metadata)
 * use this.
 */
std::string formatDoubleExact(double v);

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_VALUE_H
