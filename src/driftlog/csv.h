/**
 * @file
 * CSV import/export for drift-log tables.
 *
 * Gives the drift log durable, interoperable persistence (the cloud
 * prototype's Aurora tables can be dumped/loaded as CSV) and feeds the
 * `nazar_ops` command-line tool.
 *
 * Format: header row with column names; RFC-4180-style quoting (cells
 * containing commas, quotes or newlines are wrapped in double quotes,
 * embedded quotes doubled). Cell types come from the target schema on
 * import; empty unquoted cells load as NULL.
 */
#ifndef NAZAR_DRIFTLOG_CSV_H
#define NAZAR_DRIFTLOG_CSV_H

#include <iosfwd>

#include "driftlog/table.h"

namespace nazar::driftlog {

/** Write a table as CSV (header + rows). */
void writeCsv(const Table &table, std::ostream &os);

/**
 * Read a CSV stream into a table with the given schema. The header
 * must match the schema's column names exactly (same order).
 * @throws NazarError on malformed input or unparsable cells.
 */
Table readCsv(const Schema &schema, std::istream &is);

/** Escape one cell for CSV output. */
std::string csvEscape(const std::string &cell);

/** Split one CSV line into cells (handles quoting). */
std::vector<std::string> csvSplit(const std::string &line);

/** Parse a cell string into a Value of the given type. */
Value parseCell(const std::string &cell, ValueType type);

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_CSV_H
