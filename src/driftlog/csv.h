/**
 * @file
 * CSV import/export for drift-log tables.
 *
 * Gives the drift log durable, interoperable persistence (the cloud
 * prototype's Aurora tables can be dumped/loaded as CSV; the
 * durability layer's snapshots embed the pending table this way) and
 * feeds the `nazar_ops` command-line tool.
 *
 * Format: header row with column names; RFC-4180-style quoting (cells
 * containing commas, quotes or newlines are wrapped in double quotes,
 * embedded quotes doubled; quoted cells may span physical lines).
 * Cell types come from the target schema on import. NULL and the
 * empty string are distinguishable: NULL exports as an empty unquoted
 * cell, the empty string as `""`. Doubles export at full precision
 * (including nan/-nan/inf/-inf), so a write/read round trip is
 * value-exact.
 */
#ifndef NAZAR_DRIFTLOG_CSV_H
#define NAZAR_DRIFTLOG_CSV_H

#include <iosfwd>

#include "driftlog/table.h"

namespace nazar::driftlog {

/** Write a table as CSV (header + rows). */
void writeCsv(const Table &table, std::ostream &os);

/**
 * Read a CSV stream into a table with the given schema. The header
 * must match the schema's column names exactly (same order).
 * @throws NazarError on malformed input or unparsable cells.
 */
Table readCsv(const Schema &schema, std::istream &is);

/** Escape one cell for CSV output. */
std::string csvEscape(const std::string &cell);

/** One split cell plus whether it was quoted in the source (the
 *  quoted bit disambiguates `""` — empty string — from an empty
 *  unquoted cell — NULL). */
struct CsvCell
{
    std::string text;
    bool quoted = false;

    bool operator==(const CsvCell &other) const = default;
};

/** Split one CSV record into cells, preserving quoted-ness. The
 *  record may contain newlines inside quoted cells. */
std::vector<CsvCell> csvSplitCells(const std::string &record);

/** Split one CSV line into cell texts (quoted-ness dropped). */
std::vector<std::string> csvSplit(const std::string &line);

/**
 * Read one logical CSV record: physical lines are joined (with '\n')
 * while a quote is still open, so quoted cells can span lines. A
 * trailing '\r' is stripped from each physical line unless it falls
 * inside an open quote. Returns false at end of stream.
 */
bool readCsvRecord(std::istream &is, std::string &record);

/** Parse a cell string into a Value of the given type. */
Value parseCell(const std::string &cell, ValueType type);

} // namespace nazar::driftlog

#endif // NAZAR_DRIFTLOG_CSV_H
