/**
 * @file
 * Implementation of CSV import/export.
 */
#include "csv.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace nazar::driftlog {

std::string
csvEscape(const std::string &cell)
{
    bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::string>
csvSplit(const std::string &line)
{
    std::vector<std::string> cells;
    std::string current;
    bool in_quotes = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current += c;
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            cells.push_back(std::move(current));
            current.clear();
        } else {
            current += c;
        }
    }
    NAZAR_CHECK(!in_quotes, "unterminated quoted cell in CSV");
    cells.push_back(std::move(current));
    return cells;
}

Value
parseCell(const std::string &cell, ValueType type)
{
    if (cell.empty())
        return Value();
    try {
        switch (type) {
          case ValueType::kNull:
            return Value();
          case ValueType::kInt:
            return Value(static_cast<int64_t>(std::stoll(cell)));
          case ValueType::kDouble:
            return Value(std::stod(cell));
          case ValueType::kBool:
            if (cell == "true" || cell == "1")
                return Value(true);
            if (cell == "false" || cell == "0")
                return Value(false);
            throw NazarError("not a boolean: " + cell);
          case ValueType::kString:
            return Value(cell);
        }
    } catch (const std::invalid_argument &) {
        throw NazarError("unparsable cell: " + cell);
    } catch (const std::out_of_range &) {
        throw NazarError("out-of-range cell: " + cell);
    }
    throw NazarError("unknown value type");
}

void
writeCsv(const Table &table, std::ostream &os)
{
    const Schema &schema = table.schema();
    for (size_t c = 0; c < schema.columnCount(); ++c)
        os << (c ? "," : "") << csvEscape(schema.column(c).name);
    os << "\n";
    for (size_t r = 0; r < table.rowCount(); ++r) {
        for (size_t c = 0; c < schema.columnCount(); ++c) {
            const Value &v = table.at(r, c);
            os << (c ? "," : "")
               << csvEscape(v.isNull() ? "" : v.toString());
        }
        os << "\n";
    }
}

Table
readCsv(const Schema &schema, std::istream &is)
{
    std::string line;
    NAZAR_CHECK(static_cast<bool>(std::getline(is, line)),
                "CSV stream is empty");
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    auto header = csvSplit(line);
    NAZAR_CHECK(header.size() == schema.columnCount(),
                "CSV header width does not match schema");
    for (size_t c = 0; c < header.size(); ++c)
        NAZAR_CHECK(header[c] == schema.column(c).name,
                    "CSV header mismatch at column " +
                        std::to_string(c) + ": " + header[c]);

    Table table(schema);
    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        auto cells = csvSplit(line);
        NAZAR_CHECK(cells.size() == schema.columnCount(),
                    "CSV row width does not match schema");
        Row row;
        row.reserve(cells.size());
        for (size_t c = 0; c < cells.size(); ++c)
            row.push_back(parseCell(cells[c], schema.column(c).type));
        table.append(row);
    }
    return table;
}

} // namespace nazar::driftlog
