/**
 * @file
 * Implementation of CSV import/export.
 */
#include "csv.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace nazar::driftlog {

std::string
csvEscape(const std::string &cell)
{
    bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<CsvCell>
csvSplitCells(const std::string &record)
{
    std::vector<CsvCell> cells;
    CsvCell current;
    bool in_quotes = false;
    for (size_t i = 0; i < record.size(); ++i) {
        char c = record[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < record.size() && record[i + 1] == '"') {
                    current.text += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                current.text += c;
            }
        } else if (c == '"') {
            in_quotes = true;
            current.quoted = true;
        } else if (c == ',') {
            cells.push_back(std::move(current));
            current = CsvCell{};
        } else {
            current.text += c;
        }
    }
    NAZAR_CHECK(!in_quotes, "unterminated quoted cell in CSV");
    cells.push_back(std::move(current));
    return cells;
}

std::vector<std::string>
csvSplit(const std::string &line)
{
    std::vector<std::string> out;
    for (auto &cell : csvSplitCells(line))
        out.push_back(std::move(cell.text));
    return out;
}

bool
readCsvRecord(std::istream &is, std::string &record)
{
    record.clear();
    std::string line;
    bool in_quotes = false;
    bool first = true;
    while (std::getline(is, line)) {
        bool odd_quotes =
            std::count(line.begin(), line.end(), '"') % 2 != 0;
        bool open_after = in_quotes != odd_quotes;
        // A trailing '\r' outside quotes is a CRLF artifact; inside an
        // open quote it is cell content and must survive.
        if (!open_after && !line.empty() && line.back() == '\r')
            line.pop_back();
        if (first) {
            record = std::move(line);
            first = false;
        } else {
            record += '\n';
            record += line;
        }
        in_quotes = open_after;
        if (!in_quotes)
            return true;
    }
    NAZAR_CHECK(!in_quotes, "unterminated quoted cell in CSV");
    return !first;
}

Value
parseCell(const std::string &cell, ValueType type)
{
    if (cell.empty())
        return Value();
    try {
        switch (type) {
          case ValueType::kNull:
            return Value();
          case ValueType::kInt:
            return Value(static_cast<int64_t>(std::stoll(cell)));
          case ValueType::kDouble: {
            // Not std::stod: it throws out_of_range on subnormals,
            // where strtod returns the nearest representable value —
            // required for formatDoubleExact output to round-trip.
            const char *begin = cell.c_str();
            char *end = nullptr;
            double d = std::strtod(begin, &end);
            if (end == begin || *end != '\0')
                throw NazarError("unparsable cell: " + cell);
            return Value(d);
          }
          case ValueType::kBool:
            if (cell == "true" || cell == "1")
                return Value(true);
            if (cell == "false" || cell == "0")
                return Value(false);
            throw NazarError("not a boolean: " + cell);
          case ValueType::kString:
            return Value(cell);
        }
    } catch (const std::invalid_argument &) {
        throw NazarError("unparsable cell: " + cell);
    } catch (const std::out_of_range &) {
        throw NazarError("out-of-range cell: " + cell);
    }
    throw NazarError("unknown value type");
}

void
writeCsv(const Table &table, std::ostream &os)
{
    const Schema &schema = table.schema();
    for (size_t c = 0; c < schema.columnCount(); ++c)
        os << (c ? "," : "") << csvEscape(schema.column(c).name);
    os << "\n";

    // Render each distinct value exactly once: escaping and double
    // formatting run per dictionary entry, and the row loop is id
    // lookups into the pre-rendered cells.
    std::vector<std::vector<std::string>> rendered(schema.columnCount());
    std::vector<const Column::Id *> ids(schema.columnCount());
    for (size_t c = 0; c < schema.columnCount(); ++c) {
        const Column &col = table.column(c);
        ids[c] = col.ids().data();
        rendered[c].reserve(col.dictSize());
        for (const Value &v : col.dictionary()) {
            if (v.isNull()) {
                rendered[c].emplace_back(); // NULL: empty unquoted cell
            } else if (v.type() == ValueType::kString &&
                       v.asString().empty()) {
                rendered[c].emplace_back(
                    "\"\""); // empty string, distinct from NULL
            } else if (v.type() == ValueType::kDouble) {
                rendered[c].push_back(
                    csvEscape(formatDoubleExact(v.asDouble())));
            } else {
                rendered[c].push_back(csvEscape(v.toString()));
            }
        }
    }
    for (size_t r = 0; r < table.rowCount(); ++r) {
        for (size_t c = 0; c < rendered.size(); ++c)
            os << (c ? "," : "") << rendered[c][ids[c][r]];
        os << "\n";
    }
}

Table
readCsv(const Schema &schema, std::istream &is)
{
    std::string record;
    NAZAR_CHECK(readCsvRecord(is, record), "CSV stream is empty");
    auto header = csvSplit(record);
    NAZAR_CHECK(header.size() == schema.columnCount(),
                "CSV header width does not match schema");
    for (size_t c = 0; c < header.size(); ++c)
        NAZAR_CHECK(header[c] == schema.column(c).name,
                    "CSV header mismatch at column " +
                        std::to_string(c) + ": " + header[c]);

    Table table(schema);
    while (readCsvRecord(is, record)) {
        if (record.empty())
            continue;
        auto cells = csvSplitCells(record);
        NAZAR_CHECK(cells.size() == schema.columnCount(),
                    "CSV row width does not match schema");
        Row row;
        row.reserve(cells.size());
        for (size_t c = 0; c < cells.size(); ++c) {
            ValueType type = schema.column(c).type;
            if (cells[c].text.empty() && cells[c].quoted &&
                type == ValueType::kString) {
                row.push_back(Value(std::string()));
            } else {
                row.push_back(parseCell(cells[c].text, type));
            }
        }
        table.append(row);
    }
    return table;
}

} // namespace nazar::driftlog
