/**
 * @file
 * Implementation of the Classifier facade.
 */
#include "classifier.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <numeric>
#include <ostream>

#include "common/error.h"
#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace nazar::nn {

std::string
toString(Architecture arch)
{
    switch (arch) {
      case Architecture::kResNet18: return "ResNet18";
      case Architecture::kResNet34: return "ResNet34";
      case Architecture::kResNet50: return "ResNet50";
    }
    return "?";
}

std::vector<size_t>
hiddenDims(Architecture arch)
{
    switch (arch) {
      case Architecture::kResNet18: return {48, 48};
      case Architecture::kResNet34: return {64, 64, 64};
      case Architecture::kResNet50: return {96, 96, 96, 96};
    }
    return {};
}

Classifier::Classifier(Architecture arch, size_t input_dim,
                       size_t num_classes, uint64_t seed)
    : arch_(arch), inputDim_(input_dim), numClasses_(num_classes)
{
    NAZAR_CHECK(input_dim > 0, "input dim must be positive");
    NAZAR_CHECK(num_classes >= 2, "need at least two classes");
    buildNetwork(seed);
}

void
Classifier::buildNetwork(uint64_t seed)
{
    Rng rng(seed);
    net_ = std::make_unique<Sequential>();
    size_t prev = inputDim_;
    for (size_t h : hiddenDims(arch_)) {
        net_->add(std::make_unique<Linear>(prev, h, rng));
        net_->add(std::make_unique<BatchNorm1d>(h));
        net_->add(std::make_unique<Relu>(h));
        prev = h;
    }
    net_->add(std::make_unique<Linear>(prev, numClasses_, rng));
}

Classifier
Classifier::clone() const
{
    Classifier copy(arch_, inputDim_, numClasses_, /*seed=*/0);
    // Copy every trainable tensor.
    auto src = const_cast<Sequential &>(*net_).params(Mode::kTrain);
    auto dst = copy.net_->params(Mode::kTrain);
    NAZAR_ASSERT(src.size() == dst.size(), "clone layout mismatch");
    for (size_t i = 0; i < src.size(); ++i)
        dst[i]->value = src[i]->value;
    // Copy BN running statistics.
    BnPatch::extract(*net_).apply(*copy.net_);
    return copy;
}

Matrix
Classifier::logits(const Matrix &x, Mode mode)
{
    NAZAR_CHECK(x.cols() == inputDim_, "input width mismatch");
    return net_->forward(x, mode);
}

std::vector<int>
Classifier::predict(const Matrix &x)
{
    Matrix z = logits(x);
    std::vector<int> out(z.rows());
    for (size_t r = 0; r < z.rows(); ++r)
        out[r] = static_cast<int>(z.argmaxRow(r));
    return out;
}

int
Classifier::predictOne(const std::vector<double> &x)
{
    Matrix z = logits(Matrix::rowVector(x));
    return static_cast<int>(z.argmaxRow(0));
}

std::vector<double>
Classifier::mspScores(const Matrix &x)
{
    return maxSoftmax(logits(x));
}

double
Classifier::accuracy(const Matrix &x, const std::vector<int> &labels)
{
    NAZAR_CHECK(x.rows() == labels.size(), "label count mismatch");
    if (x.rows() == 0)
        return 0.0;
    std::vector<int> pred = predict(x);
    size_t correct = 0;
    for (size_t i = 0; i < pred.size(); ++i)
        if (pred[i] == labels[i])
            ++correct;
    return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double
Classifier::trainSupervised(const Matrix &x, const std::vector<int> &labels,
                            const TrainConfig &config)
{
    NAZAR_CHECK(x.rows() == labels.size(), "label count mismatch");
    NAZAR_CHECK(x.rows() >= 2, "need at least two training samples");
    Rng rng(config.seed);
    Sgd opt(net_->params(Mode::kTrain), config.learningRate,
            config.momentum, config.weightDecay);

    std::vector<size_t> order(x.rows());
    std::iota(order.begin(), order.end(), 0);

    double last_epoch_loss = 0.0;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        size_t batches = 0;
        for (size_t start = 0; start < order.size();
             start += config.batchSize) {
            size_t end = std::min(order.size(), start + config.batchSize);
            if (end - start < 2)
                break; // BN needs >= 2 rows; drop the tail sliver
            std::vector<size_t> idx(order.begin() + start,
                                    order.begin() + end);
            Matrix xb = x.selectRows(idx);
            std::vector<int> yb(idx.size());
            for (size_t i = 0; i < idx.size(); ++i)
                yb[i] = labels[idx[i]];

            opt.zeroGrads();
            Matrix z = net_->forward(xb, Mode::kTrain);
            LossResult res = crossEntropy(z, yb);
            net_->backward(res.grad, Mode::kTrain);
            opt.step();

            epoch_loss += res.loss;
            ++batches;
        }
        last_epoch_loss = batches ? epoch_loss / batches : 0.0;
    }
    if (config.confidenceGain != 1.0)
        scaleLogits(config.confidenceGain);
    return last_epoch_loss;
}

double
Classifier::trainWithOutlierExposure(const Matrix &x,
                                     const std::vector<int> &labels,
                                     const Matrix &outlier_x,
                                     const TrainConfig &config,
                                     double lambda)
{
    NAZAR_CHECK(x.rows() == labels.size(), "label count mismatch");
    NAZAR_CHECK(outlier_x.rows() >= 2, "need outlier samples");
    NAZAR_CHECK(outlier_x.cols() == inputDim_,
                "outlier feature width mismatch");
    NAZAR_CHECK(lambda >= 0.0, "lambda must be non-negative");
    Rng rng(config.seed);
    Sgd opt(net_->params(Mode::kTrain), config.learningRate,
            config.momentum, config.weightDecay);

    std::vector<size_t> order(x.rows());
    std::iota(order.begin(), order.end(), 0);
    std::vector<size_t> outlier_order(outlier_x.rows());
    std::iota(outlier_order.begin(), outlier_order.end(), 0);

    const double inv_k = 1.0 / static_cast<double>(numClasses_);
    double last_epoch_loss = 0.0;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        rng.shuffle(outlier_order);
        double epoch_loss = 0.0;
        size_t batches = 0;
        size_t outlier_cursor = 0;
        for (size_t start = 0; start < order.size();
             start += config.batchSize) {
            size_t end = std::min(order.size(), start + config.batchSize);
            if (end - start < 2)
                break;
            std::vector<size_t> idx(order.begin() + start,
                                    order.begin() + end);
            Matrix xb = x.selectRows(idx);
            std::vector<int> yb(idx.size());
            for (size_t i = 0; i < idx.size(); ++i)
                yb[i] = labels[idx[i]];

            // Clean step: standard cross-entropy.
            opt.zeroGrads();
            Matrix z = net_->forward(xb, Mode::kTrain);
            LossResult clean = crossEntropy(z, yb);
            net_->backward(clean.grad, Mode::kTrain);

            // Outlier step: CE toward the uniform distribution
            // (grad = lambda * (softmax - 1/K) / batch).
            std::vector<size_t> oidx;
            size_t obatch = std::min<size_t>(config.batchSize / 2,
                                             outlier_order.size());
            obatch = std::max<size_t>(obatch, 2);
            for (size_t i = 0; i < obatch; ++i) {
                oidx.push_back(outlier_order[outlier_cursor]);
                outlier_cursor =
                    (outlier_cursor + 1) % outlier_order.size();
            }
            Matrix ob = outlier_x.selectRows(oidx);
            Matrix oz = net_->forward(ob, Mode::kTrain);
            Matrix lp = logSoftmax(oz);
            Matrix grad = lp.unaryOp([](double v) {
                return std::exp(v);
            });
            double uniform_loss = 0.0;
            for (size_t r = 0; r < oz.rows(); ++r)
                for (size_t c = 0; c < oz.cols(); ++c) {
                    uniform_loss -= inv_k * lp(r, c);
                    grad(r, c) = (grad(r, c) - inv_k);
                }
            uniform_loss /= static_cast<double>(oz.rows());
            grad *= lambda / static_cast<double>(oz.rows());
            net_->backward(grad, Mode::kTrain);

            opt.step();
            epoch_loss += clean.loss + lambda * uniform_loss;
            ++batches;
        }
        last_epoch_loss = batches ? epoch_loss / batches : 0.0;
    }
    if (config.confidenceGain != 1.0)
        scaleLogits(config.confidenceGain);
    return last_epoch_loss;
}

void
Classifier::scaleLogits(double gain)
{
    NAZAR_CHECK(gain > 0.0, "logit gain must be positive");
    // The output layer is the last layer of the chain.
    auto *out = dynamic_cast<Linear *>(&net_->layer(net_->layerCount() - 1));
    NAZAR_ASSERT(out != nullptr, "network must end in a Linear layer");
    out->weight().value *= gain;
    out->bias().value *= gain;
}

size_t
Classifier::parameterCount() const
{
    return const_cast<Sequential &>(*net_).parameterCount();
}

size_t
Classifier::bnParameterCount() const
{
    return bnPatch().scalarCount();
}

void
Classifier::save(std::ostream &os) const
{
    os << std::setprecision(17);
    os << "nazar-model 1\n";
    os << toString(arch_) << " " << inputDim_ << " " << numClasses_ << "\n";
    auto params = const_cast<Sequential &>(*net_).params(Mode::kTrain);
    os << params.size() << "\n";
    for (const Param *p : params) {
        os << p->value.rows() << " " << p->value.cols();
        for (size_t r = 0; r < p->value.rows(); ++r)
            for (size_t c = 0; c < p->value.cols(); ++c)
                os << " " << p->value(r, c);
        os << "\n";
    }
    bnPatch().save(os);
}

Classifier
Classifier::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    NAZAR_CHECK(is.good() && magic == "nazar-model" && version == 1,
                "not a nazar model stream");
    std::string arch_name;
    size_t input_dim = 0, num_classes = 0;
    is >> arch_name >> input_dim >> num_classes;
    NAZAR_CHECK(is.good(), "malformed model header");

    Architecture arch;
    if (arch_name == "ResNet18")
        arch = Architecture::kResNet18;
    else if (arch_name == "ResNet34")
        arch = Architecture::kResNet34;
    else if (arch_name == "ResNet50")
        arch = Architecture::kResNet50;
    else
        throw NazarError("unknown architecture: " + arch_name);

    Classifier model(arch, input_dim, num_classes, /*seed=*/0);
    size_t count = 0;
    is >> count;
    auto params = model.net_->params(Mode::kTrain);
    NAZAR_CHECK(count == params.size(), "parameter-count mismatch");
    for (Param *p : params) {
        size_t rows = 0, cols = 0;
        is >> rows >> cols;
        NAZAR_CHECK(rows == p->value.rows() && cols == p->value.cols(),
                    "parameter shape mismatch");
        for (size_t r = 0; r < rows; ++r)
            for (size_t c = 0; c < cols; ++c)
                is >> p->value(r, c);
    }
    NAZAR_CHECK(!is.fail(), "malformed model body");
    model.applyBnPatch(BnPatch::load(is));
    return model;
}

} // namespace nazar::nn
