/**
 * @file
 * Implementation of activation layers.
 */
#include "activation.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace nazar::nn {

Matrix
Relu::forward(const Matrix &x, Mode mode)
{
    (void)mode;
    NAZAR_CHECK(x.cols() == features_, "Relu input width mismatch");
    Matrix y = x;
    // Cache in every mode so eval-mode backward passes work.
    lastMask_ = Matrix(x.rows(), x.cols());
    for (size_t r = 0; r < y.rows(); ++r) {
        double *a = y.row(r);
        for (size_t c = 0; c < y.cols(); ++c) {
            if (a[c] > 0.0) {
                lastMask_(r, c) = 1.0;
            } else {
                a[c] = 0.0;
            }
        }
    }
    return y;
}

Matrix
Relu::backward(const Matrix &grad_out, Mode mode)
{
    (void)mode;
    NAZAR_CHECK(!lastMask_.empty(), "backward() without forward()");
    return grad_out.cwiseProduct(lastMask_);
}

std::string
Relu::name() const
{
    std::ostringstream os;
    os << "Relu(" << features_ << ")";
    return os.str();
}

Matrix
Tanh::forward(const Matrix &x, Mode mode)
{
    (void)mode;
    NAZAR_CHECK(x.cols() == features_, "Tanh input width mismatch");
    Matrix y = x.unaryOp([](double v) { return std::tanh(v); });
    lastOutput_ = y;
    return y;
}

Matrix
Tanh::backward(const Matrix &grad_out, Mode mode)
{
    (void)mode;
    NAZAR_CHECK(!lastOutput_.empty(), "backward() without forward()");
    Matrix g = grad_out;
    for (size_t r = 0; r < g.rows(); ++r)
        for (size_t c = 0; c < g.cols(); ++c)
            g(r, c) *= 1.0 - lastOutput_(r, c) * lastOutput_(r, c);
    return g;
}

std::string
Tanh::name() const
{
    std::ostringstream os;
    os << "Tanh(" << features_ << ")";
    return os.str();
}

} // namespace nazar::nn
