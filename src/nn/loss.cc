/**
 * @file
 * Implementation of losses and probability utilities.
 */
#include "loss.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace nazar::nn {

Matrix
softmax(const Matrix &logits)
{
    Matrix p = logits;
    for (size_t r = 0; r < p.rows(); ++r) {
        double *a = p.row(r);
        double mx = a[0];
        for (size_t c = 1; c < p.cols(); ++c)
            mx = std::max(mx, a[c]);
        double sum = 0.0;
        for (size_t c = 0; c < p.cols(); ++c) {
            a[c] = std::exp(a[c] - mx);
            sum += a[c];
        }
        for (size_t c = 0; c < p.cols(); ++c)
            a[c] /= sum;
    }
    return p;
}

Matrix
logSoftmax(const Matrix &logits)
{
    Matrix lp = logits;
    for (size_t r = 0; r < lp.rows(); ++r) {
        double *a = lp.row(r);
        double mx = a[0];
        for (size_t c = 1; c < lp.cols(); ++c)
            mx = std::max(mx, a[c]);
        double sum = 0.0;
        for (size_t c = 0; c < lp.cols(); ++c)
            sum += std::exp(a[c] - mx);
        double lse = mx + std::log(sum);
        for (size_t c = 0; c < lp.cols(); ++c)
            a[c] -= lse;
    }
    return lp;
}

std::vector<double>
maxSoftmax(const Matrix &logits)
{
    Matrix p = softmax(logits);
    std::vector<double> out(p.rows());
    for (size_t r = 0; r < p.rows(); ++r) {
        const double *a = p.row(r);
        out[r] = *std::max_element(a, a + p.cols());
    }
    return out;
}

std::vector<double>
softmaxEntropy(const Matrix &logits)
{
    Matrix p = softmax(logits);
    std::vector<double> out(p.rows(), 0.0);
    for (size_t r = 0; r < p.rows(); ++r) {
        const double *a = p.row(r);
        double h = 0.0;
        for (size_t c = 0; c < p.cols(); ++c)
            if (a[c] > 0.0)
                h -= a[c] * std::log(a[c]);
        out[r] = h;
    }
    return out;
}

std::vector<double>
energyScore(const Matrix &logits)
{
    std::vector<double> out(logits.rows());
    for (size_t r = 0; r < logits.rows(); ++r) {
        const double *a = logits.row(r);
        double mx = a[0];
        for (size_t c = 1; c < logits.cols(); ++c)
            mx = std::max(mx, a[c]);
        double sum = 0.0;
        for (size_t c = 0; c < logits.cols(); ++c)
            sum += std::exp(a[c] - mx);
        out[r] = -(mx + std::log(sum));
    }
    return out;
}

LossResult
crossEntropy(const Matrix &logits, const std::vector<int> &labels)
{
    NAZAR_CHECK(logits.rows() == labels.size(),
                "label count must match batch size");
    Matrix lp = logSoftmax(logits);
    Matrix p = lp.unaryOp([](double v) { return std::exp(v); });
    size_t n = logits.rows();
    double inv_n = 1.0 / static_cast<double>(n);

    double loss = 0.0;
    Matrix grad = p;
    for (size_t r = 0; r < n; ++r) {
        int y = labels[r];
        NAZAR_CHECK(y >= 0 && static_cast<size_t>(y) < logits.cols(),
                    "label out of range");
        loss -= lp(r, static_cast<size_t>(y));
        grad(r, static_cast<size_t>(y)) -= 1.0;
    }
    grad *= inv_n;
    return LossResult{loss * inv_n, std::move(grad)};
}

LossResult
meanEntropy(const Matrix &logits)
{
    NAZAR_CHECK(logits.rows() > 0, "meanEntropy on an empty batch");
    Matrix lp = logSoftmax(logits);
    Matrix p = lp.unaryOp([](double v) { return std::exp(v); });
    size_t n = logits.rows();
    double inv_n = 1.0 / static_cast<double>(n);

    Matrix grad(n, logits.cols());
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
        double h = 0.0;
        for (size_t c = 0; c < logits.cols(); ++c)
            h -= p(r, c) * lp(r, c);
        total += h;
        // dH/dz_k = -p_k (log p_k + H)
        for (size_t c = 0; c < logits.cols(); ++c)
            grad(r, c) = -p(r, c) * (lp(r, c) + h) * inv_n;
    }
    return LossResult{total * inv_n, std::move(grad)};
}

LossResult
marginalEntropy(const Matrix &logits)
{
    NAZAR_CHECK(logits.rows() > 0, "marginalEntropy on an empty batch");
    Matrix p = softmax(logits);
    size_t b = logits.rows();
    size_t k = logits.cols();
    double inv_b = 1.0 / static_cast<double>(b);

    // Averaged distribution over the augmented copies.
    std::vector<double> pbar(k, 0.0);
    for (size_t r = 0; r < b; ++r)
        for (size_t c = 0; c < k; ++c)
            pbar[c] += p(r, c) * inv_b;

    double loss = 0.0;
    std::vector<double> log_pbar(k);
    for (size_t c = 0; c < k; ++c) {
        log_pbar[c] = std::log(std::max(pbar[c], 1e-300));
        loss -= pbar[c] * log_pbar[c];
    }

    // dL/dz_{i,k} = (1/B) p_{i,k} (sum_c p_{i,c} log pbar_c - log pbar_k)
    Matrix grad(b, k);
    for (size_t r = 0; r < b; ++r) {
        double dot = 0.0;
        for (size_t c = 0; c < k; ++c)
            dot += p(r, c) * log_pbar[c];
        for (size_t c = 0; c < k; ++c)
            grad(r, c) = inv_b * p(r, c) * (dot - log_pbar[c]);
    }
    return LossResult{loss, std::move(grad)};
}

} // namespace nazar::nn
