/**
 * @file
 * 1-D batch normalization (Ioffe & Szegedy) — the centerpiece of
 * Nazar's adaptation substrate.
 *
 * Nazar adapts models by updating *only* BatchNorm state (paper §3.4):
 * the affine parameters gamma/beta receive TENT/MEMO gradients and the
 * running statistics are re-estimated on drifted batches. A model
 * version deployed to devices is exactly a BnPatch: the set of
 * {gamma, beta, running mean, running var} of every BN layer.
 */
#ifndef NAZAR_NN_BATCHNORM_H
#define NAZAR_NN_BATCHNORM_H

#include "nn/layer.h"

namespace nazar::nn {

/** Snapshot of one BN layer's full state. */
struct BnState
{
    Matrix gamma;       ///< 1 x features scale.
    Matrix beta;        ///< 1 x features shift.
    Matrix runningMean; ///< 1 x features running mean estimate.
    Matrix runningVar;  ///< 1 x features running variance estimate.
};

/**
 * Batch normalization over feature columns.
 *
 * Mode behaviour:
 *  - kTrain / kAdapt: normalize with batch statistics and fold them
 *    into the running estimates with the configured momentum.
 *  - kEval: normalize with the running estimates; no state change.
 */
class BatchNorm1d : public Layer
{
  public:
    /**
     * @param features Feature width.
     * @param momentum Fraction of the *new batch* folded into running
     *                 statistics each train/adapt step (PyTorch
     *                 convention; default 0.1).
     * @param eps      Variance floor for numerical stability.
     */
    explicit BatchNorm1d(size_t features, double momentum = 0.1,
                         double eps = 1e-5);

    Matrix forward(const Matrix &x, Mode mode) override;
    Matrix backward(const Matrix &grad_out, Mode mode) override;
    std::vector<Param *> params(Mode mode) override;
    std::string name() const override;
    size_t outputDim() const override { return features_; }

    size_t features() const { return features_; }
    double momentum() const { return momentum_; }

    /** Copy out the full BN state (for BnPatch extraction). */
    BnState state() const;

    /** Restore a previously extracted state. */
    void setState(const BnState &state);

    Param &gamma() { return gamma_; }
    Param &beta() { return beta_; }
    const Matrix &runningMean() const { return runningMean_; }
    const Matrix &runningVar() const { return runningVar_; }

  private:
    size_t features_;
    double momentum_;
    double eps_;

    Param gamma_; ///< 1 x features.
    Param beta_;  ///< 1 x features.
    Matrix runningMean_;
    Matrix runningVar_;

    // Cached values from the last batch-stat forward (train/adapt).
    Matrix lastXhat_;   ///< Normalized input, batch x features.
    Matrix lastInvStd_; ///< 1 x features, 1/sqrt(var + eps).
    size_t lastBatch_ = 0;
};

} // namespace nazar::nn

#endif // NAZAR_NN_BATCHNORM_H
