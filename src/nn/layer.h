/**
 * @file
 * Layer abstraction for Nazar's NN substrate.
 *
 * Layers implement forward/backward passes over batches (Matrix of
 * shape batch x features). The Mode enum distinguishes the three ways
 * Nazar runs a network:
 *
 *  - kTrain: supervised training in the cloud. BatchNorm uses batch
 *    statistics and updates its running estimates; all parameters
 *    receive gradients.
 *  - kEval: on-device inference. BatchNorm uses running statistics;
 *    no state changes.
 *  - kAdapt: self-supervised test-time adaptation (TENT / MEMO,
 *    paper §3.4). BatchNorm uses batch statistics and refreshes its
 *    running estimates, and only BatchNorm affine parameters are
 *    trainable — the rest of the model is frozen.
 */
#ifndef NAZAR_NN_LAYER_H
#define NAZAR_NN_LAYER_H

#include <string>
#include <vector>

#include "nn/matrix.h"

namespace nazar::nn {

/** Execution mode of a forward pass; see file comment. */
enum class Mode { kTrain, kEval, kAdapt };

/**
 * A trainable parameter tensor with its gradient accumulator.
 * Optimizers consume Param pointers collected from layers.
 */
struct Param
{
    Matrix value; ///< Current parameter values.
    Matrix grad;  ///< Accumulated gradient (same shape as value).
    std::string name; ///< Diagnostic name, e.g. "linear0.weight".

    explicit Param(Matrix v, std::string n = "")
        : value(std::move(v)), grad(value.rows(), value.cols()),
          name(std::move(n))
    {}

    /** Reset the gradient accumulator to zero. */
    void zeroGrad() { grad.setZero(); }
};

/**
 * Base class of all layers. A layer caches whatever it needs from the
 * last forward() call so that the matching backward() can run; callers
 * must pair them (forward then backward with the same batch).
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Compute the layer output for a batch. */
    virtual Matrix forward(const Matrix &x, Mode mode) = 0;

    /**
     * Given dLoss/dOutput, accumulate parameter gradients (into the
     * Param::grad members) and return dLoss/dInput.
     *
     * @param grad_out Gradient w.r.t. the output of the last forward().
     * @param mode     Must match the mode of the last forward().
     */
    virtual Matrix backward(const Matrix &grad_out, Mode mode) = 0;

    /**
     * Parameters that receive gradients in the given mode. In kAdapt
     * mode only BatchNorm affine parameters are returned (TENT's
     * "adapt only the BN layers" rule); in kTrain mode everything is.
     */
    virtual std::vector<Param *> params(Mode mode) = 0;

    /** Short diagnostic name, e.g. "Linear(32->64)". */
    virtual std::string name() const = 0;

    /** Width of the output this layer produces. */
    virtual size_t outputDim() const = 0;
};

} // namespace nazar::nn

#endif // NAZAR_NN_LAYER_H
