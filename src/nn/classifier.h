/**
 * @file
 * Classifier — the model facade the rest of Nazar works with.
 *
 * The paper evaluates ResNet18/34/50 image classifiers. This substrate
 * maps each architecture name to a BN-equipped MLP of increasing
 * capacity operating on feature vectors (see DESIGN.md §1 for why this
 * substitution preserves the measured phenomena). Classifier bundles
 * the network with its training loop, evaluation helpers, BN patching,
 * cloning and serialization.
 */
#ifndef NAZAR_NN_CLASSIFIER_H
#define NAZAR_NN_CLASSIFIER_H

#include <iosfwd>
#include <memory>
#include <string>

#include "common/rng.h"
#include "nn/bn_patch.h"
#include "nn/sequential.h"

namespace nazar::nn {

/**
 * Model architectures, named after the paper's ResNet variants. Larger
 * variants have more blocks and wider hidden layers, so they generalize
 * better across mixed distributions — the property Fig 8b exercises.
 */
enum class Architecture { kResNet18, kResNet34, kResNet50 };

/** Printable architecture name ("ResNet18", ...). */
std::string toString(Architecture arch);

/** Hidden-layer widths for an architecture. */
std::vector<size_t> hiddenDims(Architecture arch);

/** Supervised training hyperparameters. */
struct TrainConfig
{
    int epochs = 40;
    size_t batchSize = 64;
    double learningRate = 0.01;
    double momentum = 0.9;
    double weightDecay = 1e-4;
    uint64_t seed = 1;
    /**
     * Inference-confidence gain folded into the output layer after
     * training (see Classifier::scaleLogits). Deep ResNets are far
     * sharper (more overconfident) than a small MLP trained with SGD;
     * this reproduces their confidence profile, which the MSP detector
     * depends on. 1.0 disables.
     */
    double confidenceGain = 0.7;
};

/** A trained (or trainable) classification model. */
class Classifier
{
  public:
    /**
     * Build an untrained model.
     *
     * @param arch        Capacity tier.
     * @param input_dim   Feature width of the inputs.
     * @param num_classes Output class count.
     * @param seed        Weight-initialization seed.
     */
    Classifier(Architecture arch, size_t input_dim, size_t num_classes,
               uint64_t seed);

    Classifier(const Classifier &) = delete;
    Classifier &operator=(const Classifier &) = delete;
    Classifier(Classifier &&) = default;
    Classifier &operator=(Classifier &&) = default;

    /** Deep copy (weights, BN statistics, everything). */
    Classifier clone() const;

    // ---- inference ------------------------------------------------------

    /** Logits for a batch (eval mode unless told otherwise). */
    Matrix logits(const Matrix &x, Mode mode = Mode::kEval);

    /** Predicted class per row (eval mode). */
    std::vector<int> predict(const Matrix &x);

    /** Predicted class for a single feature vector. */
    int predictOne(const std::vector<double> &x);

    /** MSP confidence per row (eval mode). */
    std::vector<double> mspScores(const Matrix &x);

    /** Fraction of rows predicted correctly (eval mode). */
    double accuracy(const Matrix &x, const std::vector<int> &labels);

    // ---- training -------------------------------------------------------

    /**
     * Supervised training with mini-batch SGD + momentum. Applies the
     * configured confidence gain afterwards.
     * @return Mean training loss of the final epoch.
     */
    double trainSupervised(const Matrix &x, const std::vector<int> &labels,
                           const TrainConfig &config);

    /**
     * Multiply the output layer's weights and bias by @p gain — an
     * exact reparameterization that sharpens the softmax (inverse
     * temperature) without changing predicted classes on any input.
     */
    void scaleLogits(double gain);

    /**
     * Outlier-Exposure training (Hendrycks et al. 2019): standard
     * cross-entropy on labeled clean data plus a term pushing the
     * softmax toward *uniform* on an auxiliary unlabeled outlier set —
     * the "secondary dataset" requirement that rules the method out
     * for Nazar's setting (paper Table 1), implemented here so the
     * trade-off can be measured.
     *
     * @param x         Clean training features.
     * @param labels    Clean labels.
     * @param outlier_x Auxiliary outlier/drifted features (unlabeled).
     * @param config    Optimization hyperparameters.
     * @param lambda    Weight of the uniformity term (the OE
     *                  literature's default: 0.5).
     * @return Mean combined loss of the final epoch.
     */
    double trainWithOutlierExposure(const Matrix &x,
                                    const std::vector<int> &labels,
                                    const Matrix &outlier_x,
                                    const TrainConfig &config,
                                    double lambda = 0.5);

    // ---- structure ------------------------------------------------------

    Sequential &net() { return *net_; }
    const Sequential &net() const { return *net_; }

    Architecture architecture() const { return arch_; }
    size_t inputDim() const { return inputDim_; }
    size_t numClasses() const { return numClasses_; }

    /** Total trainable scalars. */
    size_t parameterCount() const;

    /** Scalars in the BN patch (the paper's "217x smaller" argument). */
    size_t bnParameterCount() const;

    /** Extract the current BN state as a deployable patch. */
    BnPatch bnPatch() const { return BnPatch::extract(*net_); }

    /** Install a BN patch (model version) into this network. */
    void applyBnPatch(const BnPatch &patch) { patch.apply(*net_); }

    // ---- serialization ---------------------------------------------------

    /** Write the full model (spec + every tensor) to a text stream. */
    void save(std::ostream &os) const;

    /** Read a model previously written by save(). */
    static Classifier load(std::istream &is);

  private:
    /** Rebuild the layer chain for (arch, dims); weights from seed. */
    void buildNetwork(uint64_t seed);

    Architecture arch_;
    size_t inputDim_;
    size_t numClasses_;
    std::unique_ptr<Sequential> net_;
};

} // namespace nazar::nn

#endif // NAZAR_NN_CLASSIFIER_H
