/**
 * @file
 * Implementation of 1-D batch normalization.
 */
#include "batchnorm.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace nazar::nn {

BatchNorm1d::BatchNorm1d(size_t features, double momentum, double eps)
    : features_(features), momentum_(momentum), eps_(eps),
      gamma_(Matrix(1, features, 1.0), "bn.gamma"),
      beta_(Matrix(1, features), "bn.beta"),
      runningMean_(1, features), runningVar_(1, features, 1.0)
{
    NAZAR_CHECK(features > 0, "BatchNorm1d needs at least one feature");
    NAZAR_CHECK(momentum > 0.0 && momentum <= 1.0,
                "momentum must be in (0, 1]");
}

Matrix
BatchNorm1d::forward(const Matrix &x, Mode mode)
{
    NAZAR_CHECK(x.cols() == features_, "BatchNorm input width mismatch");

    if (mode == Mode::kEval) {
        Matrix y = x;
        for (size_t r = 0; r < y.rows(); ++r) {
            double *a = y.row(r);
            for (size_t c = 0; c < features_; ++c) {
                double inv_std =
                    1.0 / std::sqrt(runningVar_(0, c) + eps_);
                a[c] = gamma_.value(0, c) * (a[c] - runningMean_(0, c)) *
                           inv_std +
                       beta_.value(0, c);
            }
        }
        return y;
    }

    // Train / adapt: batch statistics.
    NAZAR_CHECK(x.rows() >= 2,
                "batch-stat normalization needs a batch of >= 2");
    size_t n = x.rows();
    Matrix mean = x.colMean();
    Matrix var(1, features_);
    for (size_t r = 0; r < n; ++r) {
        const double *a = x.row(r);
        for (size_t c = 0; c < features_; ++c) {
            double d = a[c] - mean(0, c);
            var(0, c) += d * d;
        }
    }
    var *= 1.0 / static_cast<double>(n); // biased, as in training-time BN

    lastInvStd_ = Matrix(1, features_);
    for (size_t c = 0; c < features_; ++c)
        lastInvStd_(0, c) = 1.0 / std::sqrt(var(0, c) + eps_);

    lastXhat_ = Matrix(n, features_);
    Matrix y(n, features_);
    for (size_t r = 0; r < n; ++r) {
        const double *a = x.row(r);
        for (size_t c = 0; c < features_; ++c) {
            double xh = (a[c] - mean(0, c)) * lastInvStd_(0, c);
            lastXhat_(r, c) = xh;
            y(r, c) = gamma_.value(0, c) * xh + beta_.value(0, c);
        }
    }
    lastBatch_ = n;

    // Fold batch statistics into the running estimates. Running var
    // uses the unbiased batch variance (PyTorch convention).
    double unbias = n > 1 ? static_cast<double>(n) /
                                static_cast<double>(n - 1)
                          : 1.0;
    for (size_t c = 0; c < features_; ++c) {
        runningMean_(0, c) = (1.0 - momentum_) * runningMean_(0, c) +
                             momentum_ * mean(0, c);
        runningVar_(0, c) = (1.0 - momentum_) * runningVar_(0, c) +
                            momentum_ * var(0, c) * unbias;
    }
    return y;
}

Matrix
BatchNorm1d::backward(const Matrix &grad_out, Mode mode)
{
    if (mode == Mode::kEval) {
        // Eval-mode normalization is a fixed affine transform, so the
        // input gradient is elementwise: g * gamma / sqrt(var + eps).
        // (No parameter gradients: eval backward exists only for
        // input-gradient consumers such as the GOdin detector.)
        NAZAR_CHECK(grad_out.cols() == features_,
                    "BatchNorm backward shape mismatch");
        Matrix grad_in = grad_out;
        for (size_t r = 0; r < grad_in.rows(); ++r) {
            double *g = grad_in.row(r);
            for (size_t c = 0; c < features_; ++c) {
                g[c] *= gamma_.value(0, c) /
                        std::sqrt(runningVar_(0, c) + eps_);
            }
        }
        return grad_in;
    }
    NAZAR_CHECK(lastBatch_ > 0 && grad_out.rows() == lastBatch_ &&
                    grad_out.cols() == features_,
                "BatchNorm backward shape mismatch");

    size_t n = lastBatch_;
    double inv_n = 1.0 / static_cast<double>(n);

    // Parameter gradients.
    Matrix sum_g(1, features_);       // sum over batch of g
    Matrix sum_g_xhat(1, features_);  // sum over batch of g * xhat
    for (size_t r = 0; r < n; ++r) {
        const double *g = grad_out.row(r);
        const double *xh = lastXhat_.row(r);
        for (size_t c = 0; c < features_; ++c) {
            sum_g(0, c) += g[c];
            sum_g_xhat(0, c) += g[c] * xh[c];
        }
    }
    gamma_.grad += sum_g_xhat;
    beta_.grad += sum_g;

    // Input gradient (standard BN backward):
    // dx = gamma * inv_std / N * (N*g - sum_g - xhat * sum_g_xhat)
    Matrix grad_in(n, features_);
    for (size_t r = 0; r < n; ++r) {
        const double *g = grad_out.row(r);
        const double *xh = lastXhat_.row(r);
        double *o = grad_in.row(r);
        for (size_t c = 0; c < features_; ++c) {
            o[c] = gamma_.value(0, c) * lastInvStd_(0, c) * inv_n *
                   (static_cast<double>(n) * g[c] - sum_g(0, c) -
                    xh[c] * sum_g_xhat(0, c));
        }
    }
    return grad_in;
}

std::vector<Param *>
BatchNorm1d::params(Mode mode)
{
    (void)mode;
    // BN affines are trainable in both kTrain and kAdapt — this is the
    // "adapt only the BN layers" rule of TENT.
    return {&gamma_, &beta_};
}

std::string
BatchNorm1d::name() const
{
    std::ostringstream os;
    os << "BatchNorm1d(" << features_ << ")";
    return os.str();
}

BnState
BatchNorm1d::state() const
{
    return BnState{gamma_.value, beta_.value, runningMean_, runningVar_};
}

void
BatchNorm1d::setState(const BnState &state)
{
    NAZAR_CHECK(state.gamma.cols() == features_ &&
                    state.beta.cols() == features_ &&
                    state.runningMean.cols() == features_ &&
                    state.runningVar.cols() == features_,
                "BnState width mismatch");
    gamma_.value = state.gamma;
    beta_.value = state.beta;
    runningMean_ = state.runningMean;
    runningVar_ = state.runningVar;
}

} // namespace nazar::nn
