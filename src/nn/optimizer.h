/**
 * @file
 * Gradient-based optimizers over collections of Param pointers.
 */
#ifndef NAZAR_NN_OPTIMIZER_H
#define NAZAR_NN_OPTIMIZER_H

#include <vector>

#include "nn/layer.h"

namespace nazar::nn {

/** Optimizer interface: consumes accumulated grads, updates values. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Param *> params)
        : params_(std::move(params))
    {}

    virtual ~Optimizer() = default;

    /** Apply one update step from the accumulated gradients. */
    virtual void step() = 0;

    /** Zero the gradients of all managed parameters. */
    void zeroGrads();

    const std::vector<Param *> &params() const { return params_; }

  protected:
    std::vector<Param *> params_;
};

/** SGD with classical momentum and optional L2 weight decay. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Param *> params, double lr, double momentum = 0.9,
        double weight_decay = 0.0);

    void step() override;

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

  private:
    double lr_;
    double momentum_;
    double weightDecay_;
    std::vector<Matrix> velocity_; ///< One buffer per parameter.
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Param *> params, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    void step() override;

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    int t_ = 0;
    std::vector<Matrix> m_; ///< First-moment estimates.
    std::vector<Matrix> v_; ///< Second-moment estimates.
};

} // namespace nazar::nn

#endif // NAZAR_NN_OPTIMIZER_H
