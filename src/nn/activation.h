/**
 * @file
 * Elementwise activation layers.
 */
#ifndef NAZAR_NN_ACTIVATION_H
#define NAZAR_NN_ACTIVATION_H

#include "nn/layer.h"

namespace nazar::nn {

/** Rectified linear unit: y = max(0, x). */
class Relu : public Layer
{
  public:
    explicit Relu(size_t features) : features_(features) {}

    Matrix forward(const Matrix &x, Mode mode) override;
    Matrix backward(const Matrix &grad_out, Mode mode) override;
    std::vector<Param *> params(Mode mode) override { (void)mode; return {}; }
    std::string name() const override;
    size_t outputDim() const override { return features_; }

  private:
    size_t features_;
    Matrix lastMask_; ///< 1 where input > 0.
};

/** Hyperbolic tangent activation. */
class Tanh : public Layer
{
  public:
    explicit Tanh(size_t features) : features_(features) {}

    Matrix forward(const Matrix &x, Mode mode) override;
    Matrix backward(const Matrix &grad_out, Mode mode) override;
    std::vector<Param *> params(Mode mode) override { (void)mode; return {}; }
    std::string name() const override;
    size_t outputDim() const override { return features_; }

  private:
    size_t features_;
    Matrix lastOutput_; ///< tanh(x), cached for the backward pass.
};

} // namespace nazar::nn

#endif // NAZAR_NN_ACTIVATION_H
