/**
 * @file
 * Loss functions and probability utilities over logit batches.
 *
 * Everything Nazar derives from a model — predictions, MSP confidence
 * scores, the TENT entropy objective (Eq. 2), the MEMO marginal
 * entropy (Eq. 3), the training cross-entropy — is a function of the
 * logit matrix produced by Sequential::forward. This header gathers
 * those functions.
 */
#ifndef NAZAR_NN_LOSS_H
#define NAZAR_NN_LOSS_H

#include <vector>

#include "nn/matrix.h"

namespace nazar::nn {

/** Row-wise softmax with the max-subtraction stabilizer. */
Matrix softmax(const Matrix &logits);

/** Row-wise log-softmax. */
Matrix logSoftmax(const Matrix &logits);

/** Maximum softmax probability per row (the MSP confidence score). */
std::vector<double> maxSoftmax(const Matrix &logits);

/** Shannon entropy (nats) of the softmax of each row. */
std::vector<double> softmaxEntropy(const Matrix &logits);

/**
 * Energy score per row: -log sum_c exp(z_c). Lower (more negative)
 * values indicate in-distribution data (Liu et al., 2020).
 */
std::vector<double> energyScore(const Matrix &logits);

/**
 * Mean cross-entropy loss and its gradient w.r.t. logits.
 * grad = (softmax(z) - onehot(y)) / batch.
 */
struct LossResult
{
    double loss;  ///< Mean loss over the batch.
    Matrix grad;  ///< dLoss/dLogits, batch x classes.
};

/**
 * Supervised cross-entropy.
 * @param logits batch x classes.
 * @param labels class index per row.
 */
LossResult crossEntropy(const Matrix &logits, const std::vector<int> &labels);

/**
 * TENT objective (paper Eq. 2): mean prediction entropy over the batch,
 * with gradient dH/dz_k = -p_k (log p_k + H) averaged over rows.
 */
LossResult meanEntropy(const Matrix &logits);

/**
 * MEMO marginal-entropy objective (paper Eq. 3) for one source input
 * whose B augmented copies produced @p logits (B x classes): entropy of
 * the *averaged* softmax distribution; gradient is w.r.t. each copy's
 * logits.
 */
LossResult marginalEntropy(const Matrix &logits);

} // namespace nazar::nn

#endif // NAZAR_NN_LOSS_H
