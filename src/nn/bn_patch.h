/**
 * @file
 * BnPatch — the unit of model versioning in Nazar.
 *
 * The paper (§3.4) adapts only the batch-normalization layers of a
 * model: a deployed "model version" is the set of BN parameters and
 * statistics, which is two orders of magnitude smaller than the full
 * model (217x for ResNet50). A BnPatch captures exactly that state and
 * can be applied onto any network with the same BN layout.
 */
#ifndef NAZAR_NN_BN_PATCH_H
#define NAZAR_NN_BN_PATCH_H

#include <iosfwd>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/sequential.h"

namespace nazar::nn {

/** Snapshot of all BN layers of a network, in network order. */
class BnPatch
{
  public:
    BnPatch() = default;

    /** Capture the BN state of a network. */
    static BnPatch extract(const Sequential &net);

    /** Build a patch directly from per-layer states (federated
     *  aggregation constructs averaged patches this way). */
    static BnPatch fromStates(std::vector<BnState> states);

    /** Overwrite the BN state of a network with this patch. */
    void apply(Sequential &net) const;

    /** Number of BN layers captured. */
    size_t layerCount() const { return states_.size(); }

    /** Total number of scalars in the patch (4 tensors per layer). */
    size_t scalarCount() const;

    /** Approximate wire size in bytes (float32 per scalar, as a real
     *  deployment would ship). */
    size_t sizeBytes() const { return scalarCount() * sizeof(float); }

    const BnState &state(size_t i) const { return states_.at(i); }

    /** True when both patches have the same layout and values within
     *  eps. */
    bool approxEquals(const BnPatch &other, double eps = 1e-9) const;

    /** Largest absolute difference over all scalars (layout must
     *  match). Useful as a "distance" between adapted versions. */
    double maxAbsDiff(const BnPatch &other) const;

    /** Serialize to a text stream. */
    void save(std::ostream &os) const;

    /** Deserialize from a text stream (throws NazarError on bad data). */
    static BnPatch load(std::istream &is);

  private:
    std::vector<BnState> states_;
};

} // namespace nazar::nn

#endif // NAZAR_NN_BN_PATCH_H
