/**
 * @file
 * Fully-connected (dense) layer: y = x W + b.
 */
#ifndef NAZAR_NN_LINEAR_H
#define NAZAR_NN_LINEAR_H

#include "nn/layer.h"

#include "common/rng.h"

namespace nazar::nn {

/** Dense layer with He-style initialization. */
class Linear : public Layer
{
  public:
    /**
     * @param in_dim  Input feature width.
     * @param out_dim Output feature width.
     * @param rng     Source of initialization randomness.
     */
    Linear(size_t in_dim, size_t out_dim, Rng &rng);

    Matrix forward(const Matrix &x, Mode mode) override;
    Matrix backward(const Matrix &grad_out, Mode mode) override;
    std::vector<Param *> params(Mode mode) override;
    std::string name() const override;
    size_t outputDim() const override { return outDim_; }

    size_t inputDim() const { return inDim_; }

    Param &weight() { return weight_; }
    Param &bias() { return bias_; }
    const Param &weight() const { return weight_; }
    const Param &bias() const { return bias_; }

  private:
    size_t inDim_;
    size_t outDim_;
    Param weight_; ///< in_dim x out_dim.
    Param bias_;   ///< 1 x out_dim.
    Matrix lastInput_; ///< Cached activation for backward().
};

} // namespace nazar::nn

#endif // NAZAR_NN_LINEAR_H
