/**
 * @file
 * Sequential layer container — Nazar's network graph is a simple chain.
 */
#ifndef NAZAR_NN_SEQUENTIAL_H
#define NAZAR_NN_SEQUENTIAL_H

#include <memory>

#include "nn/batchnorm.h"
#include "nn/layer.h"

namespace nazar::nn {

/** Ordered chain of layers with whole-network forward/backward. */
class Sequential
{
  public:
    Sequential() = default;

    // The container owns its layers; moving is fine, copying is not.
    Sequential(const Sequential &) = delete;
    Sequential &operator=(const Sequential &) = delete;
    Sequential(Sequential &&) = default;
    Sequential &operator=(Sequential &&) = default;

    /** Append a layer; returns a reference for chaining. */
    Sequential &add(std::unique_ptr<Layer> layer);

    /** Run the full chain forward. */
    Matrix forward(const Matrix &x, Mode mode);

    /**
     * Run the full chain backward from dLoss/dLogits, accumulating
     * parameter gradients; returns dLoss/dInput.
     */
    Matrix backward(const Matrix &grad_logits, Mode mode);

    /** All parameters trainable in the given mode. */
    std::vector<Param *> params(Mode mode);

    /** Zero every parameter gradient (all modes). */
    void zeroGrads();

    /** Pointers to the BatchNorm layers, in network order. */
    std::vector<BatchNorm1d *> batchNormLayers();
    std::vector<const BatchNorm1d *> batchNormLayers() const;

    size_t layerCount() const { return layers_.size(); }
    Layer &layer(size_t i) { return *layers_.at(i); }
    const Layer &layer(size_t i) const { return *layers_.at(i); }

    /** Total number of scalar parameters (train mode). */
    size_t parameterCount();

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace nazar::nn

#endif // NAZAR_NN_SEQUENTIAL_H
