/**
 * @file
 * Implementation of SGD and Adam.
 */
#include "optimizer.h"

#include <cmath>

#include "common/error.h"

namespace nazar::nn {

void
Optimizer::zeroGrads()
{
    for (Param *p : params_)
        p->zeroGrad();
}

Sgd::Sgd(std::vector<Param *> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum),
      weightDecay_(weight_decay)
{
    NAZAR_CHECK(lr > 0.0, "learning rate must be positive");
    velocity_.reserve(params_.size());
    for (Param *p : params_)
        velocity_.emplace_back(p->value.rows(), p->value.cols());
}

void
Sgd::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        Param *p = params_[i];
        Matrix &vel = velocity_[i];
        for (size_t r = 0; r < p->value.rows(); ++r) {
            for (size_t c = 0; c < p->value.cols(); ++c) {
                double g = p->grad(r, c) + weightDecay_ * p->value(r, c);
                vel(r, c) = momentum_ * vel(r, c) + g;
                p->value(r, c) -= lr_ * vel(r, c);
            }
        }
    }
}

Adam::Adam(std::vector<Param *> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps)
{
    NAZAR_CHECK(lr > 0.0, "learning rate must be positive");
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Param *p : params_) {
        m_.emplace_back(p->value.rows(), p->value.cols());
        v_.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
Adam::step()
{
    ++t_;
    double bc1 = 1.0 - std::pow(beta1_, t_);
    double bc2 = 1.0 - std::pow(beta2_, t_);
    for (size_t i = 0; i < params_.size(); ++i) {
        Param *p = params_[i];
        for (size_t r = 0; r < p->value.rows(); ++r) {
            for (size_t c = 0; c < p->value.cols(); ++c) {
                double g = p->grad(r, c);
                m_[i](r, c) = beta1_ * m_[i](r, c) + (1.0 - beta1_) * g;
                v_[i](r, c) = beta2_ * v_[i](r, c) + (1.0 - beta2_) * g * g;
                double mh = m_[i](r, c) / bc1;
                double vh = v_[i](r, c) / bc2;
                p->value(r, c) -= lr_ * mh / (std::sqrt(vh) + eps_);
            }
        }
    }
}

} // namespace nazar::nn
