/**
 * @file
 * Implementation of the sequential container.
 */
#include "sequential.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::nn {

Sequential &
Sequential::add(std::unique_ptr<Layer> layer)
{
    NAZAR_CHECK(layer != nullptr, "cannot add a null layer");
    layers_.push_back(std::move(layer));
    return *this;
}

Matrix
Sequential::forward(const Matrix &x, Mode mode)
{
    NAZAR_SPAN("nn.forward");
    static obs::Counter &rows =
        obs::Registry::global().counter("nn.forward.rows");
    rows.add(x.rows());
    Matrix h = x;
    for (auto &layer : layers_)
        h = layer->forward(h, mode);
    return h;
}

Matrix
Sequential::backward(const Matrix &grad_logits, Mode mode)
{
    NAZAR_SPAN("nn.backward");
    static obs::Counter &rows =
        obs::Registry::global().counter("nn.backward.rows");
    rows.add(grad_logits.rows());
    Matrix g = grad_logits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g, mode);
    return g;
}

std::vector<Param *>
Sequential::params(Mode mode)
{
    std::vector<Param *> out;
    for (auto &layer : layers_)
        for (Param *p : layer->params(mode))
            out.push_back(p);
    return out;
}

void
Sequential::zeroGrads()
{
    for (Param *p : params(Mode::kTrain))
        p->zeroGrad();
}

std::vector<BatchNorm1d *>
Sequential::batchNormLayers()
{
    std::vector<BatchNorm1d *> out;
    for (auto &layer : layers_)
        if (auto *bn = dynamic_cast<BatchNorm1d *>(layer.get()))
            out.push_back(bn);
    return out;
}

std::vector<const BatchNorm1d *>
Sequential::batchNormLayers() const
{
    std::vector<const BatchNorm1d *> out;
    for (const auto &layer : layers_)
        if (const auto *bn = dynamic_cast<const BatchNorm1d *>(layer.get()))
            out.push_back(bn);
    return out;
}

size_t
Sequential::parameterCount()
{
    size_t n = 0;
    for (Param *p : params(Mode::kTrain))
        n += p->value.size();
    return n;
}

} // namespace nazar::nn
