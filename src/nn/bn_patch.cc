/**
 * @file
 * Implementation of BnPatch.
 */
#include "bn_patch.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>

#include "common/error.h"

namespace nazar::nn {

namespace {

void
writeMatrix(std::ostream &os, const Matrix &m)
{
    os << m.rows() << " " << m.cols();
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            os << " " << m(r, c);
    os << "\n";
}

Matrix
readMatrix(std::istream &is)
{
    size_t rows = 0, cols = 0;
    is >> rows >> cols;
    NAZAR_CHECK(is.good() && rows > 0 && cols > 0,
                "malformed matrix header in BnPatch stream");
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            is >> m(r, c);
    NAZAR_CHECK(!is.fail(), "malformed matrix body in BnPatch stream");
    return m;
}

} // namespace

BnPatch
BnPatch::extract(const Sequential &net)
{
    BnPatch patch;
    for (const BatchNorm1d *bn : net.batchNormLayers())
        patch.states_.push_back(bn->state());
    return patch;
}

BnPatch
BnPatch::fromStates(std::vector<BnState> states)
{
    BnPatch patch;
    patch.states_ = std::move(states);
    return patch;
}

void
BnPatch::apply(Sequential &net) const
{
    auto layers = net.batchNormLayers();
    NAZAR_CHECK(layers.size() == states_.size(),
                "BnPatch layout does not match target network");
    for (size_t i = 0; i < layers.size(); ++i)
        layers[i]->setState(states_[i]);
}

size_t
BnPatch::scalarCount() const
{
    size_t n = 0;
    for (const auto &s : states_) {
        n += s.gamma.size() + s.beta.size() + s.runningMean.size() +
             s.runningVar.size();
    }
    return n;
}

bool
BnPatch::approxEquals(const BnPatch &other, double eps) const
{
    if (states_.size() != other.states_.size())
        return false;
    for (size_t i = 0; i < states_.size(); ++i) {
        const auto &a = states_[i];
        const auto &b = other.states_[i];
        if (!a.gamma.approxEquals(b.gamma, eps) ||
            !a.beta.approxEquals(b.beta, eps) ||
            !a.runningMean.approxEquals(b.runningMean, eps) ||
            !a.runningVar.approxEquals(b.runningVar, eps)) {
            return false;
        }
    }
    return true;
}

double
BnPatch::maxAbsDiff(const BnPatch &other) const
{
    NAZAR_CHECK(states_.size() == other.states_.size(),
                "BnPatch layout mismatch");
    double worst = 0.0;
    auto upd = [&](const Matrix &a, const Matrix &b) {
        NAZAR_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                    "BnPatch tensor shape mismatch");
        for (size_t r = 0; r < a.rows(); ++r)
            for (size_t c = 0; c < a.cols(); ++c)
                worst = std::max(worst, std::fabs(a(r, c) - b(r, c)));
    };
    for (size_t i = 0; i < states_.size(); ++i) {
        upd(states_[i].gamma, other.states_[i].gamma);
        upd(states_[i].beta, other.states_[i].beta);
        upd(states_[i].runningMean, other.states_[i].runningMean);
        upd(states_[i].runningVar, other.states_[i].runningVar);
    }
    return worst;
}

void
BnPatch::save(std::ostream &os) const
{
    os << std::setprecision(17);
    os << "nazar-bnpatch 1 " << states_.size() << "\n";
    for (const auto &s : states_) {
        writeMatrix(os, s.gamma);
        writeMatrix(os, s.beta);
        writeMatrix(os, s.runningMean);
        writeMatrix(os, s.runningVar);
    }
}

BnPatch
BnPatch::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    size_t count = 0;
    is >> magic >> version >> count;
    NAZAR_CHECK(is.good() && magic == "nazar-bnpatch" && version == 1,
                "not a BnPatch stream");
    BnPatch patch;
    patch.states_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        BnState s;
        s.gamma = readMatrix(is);
        s.beta = readMatrix(is);
        s.runningMean = readMatrix(is);
        s.runningVar = readMatrix(is);
        patch.states_.push_back(std::move(s));
    }
    return patch;
}

} // namespace nazar::nn
