/**
 * @file
 * Implementation of the dense layer.
 */
#include "linear.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace nazar::nn {

Linear::Linear(size_t in_dim, size_t out_dim, Rng &rng)
    : inDim_(in_dim), outDim_(out_dim),
      weight_(Matrix::randomNormal(in_dim, out_dim,
                                   std::sqrt(2.0 / static_cast<double>(
                                                 in_dim)),
                                   rng),
              "linear.weight"),
      bias_(Matrix(1, out_dim), "linear.bias")
{
    NAZAR_CHECK(in_dim > 0 && out_dim > 0, "Linear dims must be positive");
}

Matrix
Linear::forward(const Matrix &x, Mode mode)
{
    NAZAR_CHECK(x.cols() == inDim_, "Linear input width mismatch");
    // Cache in every mode: eval-mode backward passes (input-gradient
    // detectors like GOdin) need it too.
    lastInput_ = x;
    Matrix y = x.matmul(weight_.value);
    y.addRowBroadcast(bias_.value);
    return y;
}

Matrix
Linear::backward(const Matrix &grad_out, Mode mode)
{
    NAZAR_CHECK(grad_out.cols() == outDim_, "Linear grad width mismatch");
    NAZAR_CHECK(!lastInput_.empty(), "backward() without forward()");
    if (mode == Mode::kTrain) {
        // dL/dW = x^T g ; dL/db = column sums of g.
        weight_.grad += lastInput_.transposeMatmul(grad_out);
        bias_.grad += grad_out.colSum();
    }
    // dL/dx = g W^T (needed in every mode to reach earlier BN layers).
    return grad_out.matmulTranspose(weight_.value);
}

std::vector<Param *>
Linear::params(Mode mode)
{
    if (mode == Mode::kAdapt)
        return {}; // frozen during test-time adaptation
    return {&weight_, &bias_};
}

std::string
Linear::name() const
{
    std::ostringstream os;
    os << "Linear(" << inDim_ << "->" << outDim_ << ")";
    return os.str();
}

} // namespace nazar::nn
