/**
 * @file
 * Implementation of the dense matrix type.
 */
#include "matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace nazar::nn {

namespace {

/**
 * Minimum multiply-accumulate count before a matmul engages the
 * thread pool. Below this the dispatch overhead dominates (the
 * single-row inference path in sim::Device stays pool-free). The
 * cutoff only selects between executing the same per-row kernel
 * inline or on the pool, so results are bit-identical either way.
 */
constexpr size_t kParallelFlopCutoff = 32 * 1024;

/** Rows per chunk so each chunk carries at least the cutoff's work. */
size_t
rowGrain(size_t flops_per_row)
{
    return std::max<size_t>(1, kParallelFlopCutoff /
                                   std::max<size_t>(1, flops_per_row));
}

/** Run a per-output-row kernel serially or row-partitioned. */
template <typename RowFn>
void
forEachRow(size_t rows, size_t flops_per_row, RowFn &&fn)
{
    if (rows * flops_per_row < kParallelFlopCutoff) {
        for (size_t r = 0; r < rows; ++r)
            fn(r);
        return;
    }
    runtime::parallelFor(0, rows, rowGrain(flops_per_row),
                         [&](size_t row_begin, size_t row_end) {
                             for (size_t r = row_begin; r < row_end; ++r)
                                 fn(r);
                         });
}

} // namespace

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    NAZAR_CHECK(!rows.empty(), "fromRows needs at least one row");
    Matrix m(rows.size(), rows[0].size());
    for (size_t r = 0; r < rows.size(); ++r) {
        NAZAR_CHECK(rows[r].size() == m.cols_, "ragged rows");
        for (size_t c = 0; c < m.cols_; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::rowVector(const std::vector<double> &v)
{
    Matrix m(1, v.size());
    for (size_t c = 0; c < v.size(); ++c)
        m(0, c) = v[c];
    return m;
}

Matrix
Matrix::randomNormal(size_t rows, size_t cols, double stddev, Rng &rng)
{
    Matrix m(rows, cols);
    for (auto &x : m.data_)
        x = rng.normal(0.0, stddev);
    return m;
}

std::vector<double>
Matrix::rowVec(size_t r) const
{
    NAZAR_CHECK(r < rows_, "row index out of range");
    return std::vector<double>(row(r), row(r) + cols_);
}

void
Matrix::setRow(size_t r, const std::vector<double> &v)
{
    NAZAR_CHECK(r < rows_, "row index out of range");
    NAZAR_CHECK(v.size() == cols_, "row length mismatch");
    std::copy(v.begin(), v.end(), row(r));
}

void
Matrix::fill(double v)
{
    std::fill(data_.begin(), data_.end(), v);
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    NAZAR_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                "shape mismatch in +=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    NAZAR_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                "shape mismatch in -=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(double s)
{
    for (auto &x : data_)
        x *= s;
    return *this;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    Matrix m = *this;
    m += other;
    return m;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    Matrix m = *this;
    m -= other;
    return m;
}

Matrix
Matrix::operator*(double s) const
{
    Matrix m = *this;
    m *= s;
    return m;
}

Matrix
Matrix::cwiseProduct(const Matrix &other) const
{
    NAZAR_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                "shape mismatch in cwiseProduct");
    Matrix m = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        m.data_[i] *= other.data_[i];
    return m;
}

Matrix
Matrix::unaryOp(const std::function<double(double)> &f) const
{
    Matrix m = *this;
    for (auto &x : m.data_)
        x = f(x);
    return m;
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    NAZAR_CHECK(cols_ == other.rows_, "inner dimension mismatch in matmul");
    NAZAR_SPAN("nn.matmul");
    static obs::Counter &rows_processed =
        obs::Registry::global().counter("nn.matmul.rows");
    rows_processed.add(rows_);
    Matrix out(rows_, other.cols_);
    // Each output row is produced entirely by one thread with the same
    // k-ascending accumulation order, so the result is bit-identical
    // at every thread count.
    forEachRow(rows_, cols_ * other.cols_, [&](size_t r) {
        const double *a = row(r);
        double *o = out.row(r);
        for (size_t k = 0; k < cols_; ++k) {
            double av = a[k];
            if (av == 0.0)
                continue;
            const double *b = other.row(k);
            for (size_t c = 0; c < other.cols_; ++c)
                o[c] += av * b[c];
        }
    });
    return out;
}

Matrix
Matrix::transposeMatmul(const Matrix &other) const
{
    // (this^T * other): this is (n x a), other is (n x b), result (a x b).
    NAZAR_CHECK(rows_ == other.rows_,
                "row-count mismatch in transposeMatmul");
    NAZAR_SPAN("nn.transpose_matmul");
    Matrix out(cols_, other.cols_);
    // Partitioned over output rows i; each out(i, *) accumulates over
    // n in ascending order exactly as the serial n-outer loop did.
    forEachRow(cols_, rows_ * other.cols_, [&](size_t i) {
        double *o = out.row(i);
        for (size_t n = 0; n < rows_; ++n) {
            double av = (*this)(n, i);
            if (av == 0.0)
                continue;
            const double *b = other.row(n);
            for (size_t j = 0; j < other.cols_; ++j)
                o[j] += av * b[j];
        }
    });
    return out;
}

Matrix
Matrix::matmulTranspose(const Matrix &other) const
{
    // (this * other^T): this is (n x k), other is (m x k), result (n x m).
    NAZAR_CHECK(cols_ == other.cols_,
                "column-count mismatch in matmulTranspose");
    NAZAR_SPAN("nn.matmul_transpose");
    Matrix out(rows_, other.rows_);
    forEachRow(rows_, other.rows_ * cols_, [&](size_t r) {
        const double *a = row(r);
        for (size_t m = 0; m < other.rows_; ++m) {
            const double *b = other.row(m);
            double acc = 0.0;
            for (size_t k = 0; k < cols_; ++k)
                acc += a[k] * b[k];
            out(r, m) = acc;
        }
    });
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

void
Matrix::addRowBroadcast(const Matrix &row_vec)
{
    NAZAR_CHECK(row_vec.rows() == 1 && row_vec.cols() == cols_,
                "broadcast row must be 1 x cols");
    for (size_t r = 0; r < rows_; ++r) {
        double *a = row(r);
        const double *b = row_vec.row(0);
        for (size_t c = 0; c < cols_; ++c)
            a[c] += b[c];
    }
}

void
Matrix::mulRowBroadcast(const Matrix &row_vec)
{
    NAZAR_CHECK(row_vec.rows() == 1 && row_vec.cols() == cols_,
                "broadcast row must be 1 x cols");
    for (size_t r = 0; r < rows_; ++r) {
        double *a = row(r);
        const double *b = row_vec.row(0);
        for (size_t c = 0; c < cols_; ++c)
            a[c] *= b[c];
    }
}

Matrix
Matrix::colSum() const
{
    Matrix out(1, cols_);
    for (size_t r = 0; r < rows_; ++r) {
        const double *a = row(r);
        for (size_t c = 0; c < cols_; ++c)
            out(0, c) += a[c];
    }
    return out;
}

Matrix
Matrix::colMean() const
{
    NAZAR_CHECK(rows_ > 0, "colMean of empty matrix");
    Matrix out = colSum();
    out *= 1.0 / static_cast<double>(rows_);
    return out;
}

double
Matrix::sum() const
{
    double s = 0.0;
    for (double x : data_)
        s += x;
    return s;
}

double
Matrix::norm() const
{
    double s = 0.0;
    for (double x : data_)
        s += x * x;
    return std::sqrt(s);
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (double x : data_)
        m = std::max(m, std::fabs(x));
    return m;
}

size_t
Matrix::argmaxRow(size_t r) const
{
    NAZAR_CHECK(r < rows_ && cols_ > 0, "argmaxRow out of range");
    const double *a = row(r);
    size_t best = 0;
    for (size_t c = 1; c < cols_; ++c)
        if (a[c] > a[best])
            best = c;
    return best;
}

Matrix
Matrix::selectRows(const std::vector<size_t> &indices) const
{
    Matrix out(indices.size(), cols_);
    for (size_t i = 0; i < indices.size(); ++i) {
        NAZAR_CHECK(indices[i] < rows_, "selectRows index out of range");
        std::copy(row(indices[i]), row(indices[i]) + cols_, out.row(i));
    }
    return out;
}

bool
Matrix::approxEquals(const Matrix &other, double eps) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (size_t i = 0; i < data_.size(); ++i)
        if (std::fabs(data_[i] - other.data_[i]) > eps)
            return false;
    return true;
}

Matrix
Matrix::choleskyFactor() const
{
    NAZAR_CHECK(rows_ == cols_ && rows_ > 0,
                "Cholesky needs a square matrix");
    const size_t n = rows_;
    Matrix l(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double sum = (*this)(i, j);
            for (size_t k = 0; k < j; ++k)
                sum -= l(i, k) * l(j, k);
            if (i == j) {
                NAZAR_CHECK(sum > 0.0,
                            "matrix is not positive definite");
                l(i, j) = std::sqrt(sum);
            } else {
                l(i, j) = sum / l(j, j);
            }
        }
    }
    return l;
}

std::vector<double>
Matrix::choleskySolve(const std::vector<double> &b) const
{
    NAZAR_CHECK(rows_ == cols_ && b.size() == rows_,
                "choleskySolve shape mismatch");
    const size_t n = rows_;
    // Forward substitution: L y = b.
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (size_t k = 0; k < i; ++k)
            sum -= (*this)(i, k) * y[k];
        y[i] = sum / (*this)(i, i);
    }
    // Back substitution: L^T x = y.
    std::vector<double> x(n);
    for (size_t ii = n; ii-- > 0;) {
        double sum = y[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= (*this)(k, ii) * x[k];
        x[ii] = sum / (*this)(ii, ii);
    }
    return x;
}

std::ostream &
operator<<(std::ostream &os, const Matrix &m)
{
    os << "Matrix(" << m.rows() << "x" << m.cols() << ")[";
    for (size_t r = 0; r < m.rows(); ++r) {
        os << (r ? "; " : "");
        for (size_t c = 0; c < m.cols(); ++c)
            os << (c ? ", " : "") << m(r, c);
    }
    return os << "]";
}

} // namespace nazar::nn
