/**
 * @file
 * Dense row-major matrix — the tensor type of Nazar's NN substrate.
 *
 * All model math (activations, gradients, parameters) flows through
 * Matrix. Rows are samples within a batch; columns are features or
 * classes. Sizes in Nazar are small (batch <= a few hundred, feature
 * dims <= a few hundred), so a straightforward implementation with
 * double precision is both fast enough and numerically safe.
 */
#ifndef NAZAR_NN_MATRIX_H
#define NAZAR_NN_MATRIX_H

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <vector>

#include "common/rng.h"

namespace nazar::nn {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(size_t rows, size_t cols);

    /** rows x cols matrix filled with @p fill. */
    Matrix(size_t rows, size_t cols, double fill);

    /** Build from nested initializer data (rows of equal length). */
    static Matrix fromRows(const std::vector<std::vector<double>> &rows);

    /** A single-row matrix wrapping a vector. */
    static Matrix rowVector(const std::vector<double> &v);

    /** Matrix with i.i.d. N(0, stddev^2) entries. */
    static Matrix randomNormal(size_t rows, size_t cols, double stddev,
                               Rng &rng);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    double *data() { return data_.data(); }
    const double *data() const { return data_.data(); }

    /** Pointer to the start of row r. */
    double *row(size_t r) { return data_.data() + r * cols_; }
    const double *row(size_t r) const { return data_.data() + r * cols_; }

    /** Copy row r out as a vector. */
    std::vector<double> rowVec(size_t r) const;

    /** Overwrite row r from a vector of length cols(). */
    void setRow(size_t r, const std::vector<double> &v);

    /** Set every entry to a constant. */
    void fill(double v);

    /** Set every entry to zero. */
    void setZero() { fill(0.0); }

    // ---- arithmetic -----------------------------------------------------

    Matrix &operator+=(const Matrix &other);
    Matrix &operator-=(const Matrix &other);
    Matrix &operator*=(double s);

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(double s) const;

    /** Elementwise (Hadamard) product. */
    Matrix cwiseProduct(const Matrix &other) const;

    /** Apply a scalar function elementwise. */
    Matrix unaryOp(const std::function<double(double)> &f) const;

    /** this (rows x k) times other (k x cols). */
    Matrix matmul(const Matrix &other) const;

    /** this^T times other: (k x rows)^T -> contribution per column pair. */
    Matrix transposeMatmul(const Matrix &other) const;

    /** this times other^T. */
    Matrix matmulTranspose(const Matrix &other) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Add a 1 x cols row vector to every row. */
    void addRowBroadcast(const Matrix &row_vec);

    /** Multiply every row elementwise by a 1 x cols row vector. */
    void mulRowBroadcast(const Matrix &row_vec);

    /** Column sums as a 1 x cols matrix. */
    Matrix colSum() const;

    /** Column means as a 1 x cols matrix. */
    Matrix colMean() const;

    /** Sum of all entries. */
    double sum() const;

    /** Frobenius norm. */
    double norm() const;

    /** Max absolute entry (0 for an empty matrix). */
    double maxAbs() const;

    /** Index of the maximum entry within row r. */
    size_t argmaxRow(size_t r) const;

    /** Gather a subset of rows into a new matrix. */
    Matrix selectRows(const std::vector<size_t> &indices) const;

    /** True when shapes match and entries differ by at most eps. */
    bool approxEquals(const Matrix &other, double eps = 1e-9) const;

    /**
     * Cholesky factorization of a symmetric positive-definite matrix:
     * returns lower-triangular L with L L^T == this. Throws NazarError
     * when the matrix is not square or not (numerically) SPD.
     */
    Matrix choleskyFactor() const;

    /**
     * Solve (L L^T) x = b given the lower-triangular factor L from
     * choleskyFactor(), via forward + back substitution.
     * @param b Right-hand side of length rows().
     */
    std::vector<double>
    choleskySolve(const std::vector<double> &b) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/** Human-readable stream output (for debugging/tests). */
std::ostream &operator<<(std::ostream &os, const Matrix &m);

} // namespace nazar::nn

#endif // NAZAR_NN_MATRIX_H
