#include "persist/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "obs/metrics.h"

namespace nazar::persist {

namespace fs = std::filesystem;

FaultKind
faultKindFromString(const std::string &name)
{
    if (name == "none")
        return FaultKind::kNone;
    if (name == "short_write")
        return FaultKind::kShortWrite;
    if (name == "enospc")
        return FaultKind::kEnospc;
    if (name == "eio")
        return FaultKind::kEio;
    if (name == "sync_fail")
        return FaultKind::kSyncFail;
    if (name == "lost_rename")
        return FaultKind::kLostRename;
    if (name == "lost_file")
        return FaultKind::kLostFile;
    throw NazarError("unknown fault kind '" + name +
                     "' (expected none|short_write|enospc|eio|"
                     "sync_fail|lost_rename|lost_file)");
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kNone:
        return "none";
    case FaultKind::kShortWrite:
        return "short_write";
    case FaultKind::kEnospc:
        return "enospc";
    case FaultKind::kEio:
        return "eio";
    case FaultKind::kSyncFail:
        return "sync_fail";
    case FaultKind::kLostRename:
        return "lost_rename";
    case FaultKind::kLostFile:
        return "lost_file";
    }
    return "?";
}

void
Env::arm(const DiskFaultPlan &plan)
{
    std::lock_guard<std::mutex> lk(mu_);
    plan_ = plan;
    fired_ = false;
}

bool
Env::faulted() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return faulted_;
}

std::string
Env::faultSite() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return faultSite_;
}

uint64_t
Env::hitCount(const std::string &site) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = hits_.find(site);
    return it == hits_.end() ? 0 : it->second;
}

uint64_t
Env::totalHits() const
{
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t total = 0;
    for (const auto &[site, count] : hits_)
        total += count;
    return total;
}

FaultKind
Env::maybeFault(const char *site)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (faulted_)
        throw DiskFault(faultSite_,
                        "durability layer latched by an earlier fault "
                        "(fsync gate) — rebuild from the state "
                        "directory to clear");
    uint64_t hit = ++hits_[site];
    if (plan_.armed() && !fired_ && plan_.site == site &&
        hit == plan_.hit) {
        fired_ = true;
        return plan_.kind;
    }
    return FaultKind::kNone;
}

void
Env::latch(const std::string &site, const std::string &detail)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!faulted_) {
            faulted_ = true;
            faultSite_ = site;
        }
    }
    obs::Registry::global().counter("persist.env.disk_faults").add(1);
    throw DiskFault(site, detail);
}

Env::File *
Env::open(const char *site, const fs::path &path, const char *mode)
{
    FaultKind kind = maybeFault(site);
    if (kind == FaultKind::kEio)
        latch(site, "cannot open " + path.string() + " (injected EIO)");
    errno = 0;
    std::FILE *fp = std::fopen(path.string().c_str(), mode);
    if (fp == nullptr)
        latch(site, "cannot open " + path.string() + ": " +
                        std::strerror(errno));
    auto *f = new File;
    f->fp = fp;
    f->path = path;
    if (mode[0] == 'a') {
        std::error_code ec;
        uint64_t existing = fs::file_size(path, ec);
        f->length = ec ? 0 : existing;
    }
    // Existing bytes were synced by whoever wrote them (or recovery
    // already truncated the torn tail); new dirt starts at length.
    f->syncedLen = f->length;
    return f;
}

void
Env::write(const char *site, File *f, const void *data, size_t n)
{
    FaultKind kind = maybeFault(site);
    switch (kind) {
    case FaultKind::kShortWrite: {
        // Half the bytes reach the file before the device gives up —
        // a torn record that fails its CRC on recovery.
        size_t torn = n / 2;
        std::fwrite(data, 1, torn, f->fp);
        std::fflush(f->fp);
        f->length += torn;
        latch(site, "short write to " + f->path.string() +
                        " (injected, " + std::to_string(torn) + "/" +
                        std::to_string(n) + " bytes)");
    }
    case FaultKind::kEnospc:
        latch(site, "no space left on device writing " +
                        f->path.string() + " (injected ENOSPC)");
    case FaultKind::kEio:
        latch(site,
              "I/O error writing " + f->path.string() + " (injected EIO)");
    default:
        break;
    }
    size_t written = std::fwrite(data, 1, n, f->fp);
    f->length += written;
    if (written != n)
        latch(site, "short write to " + f->path.string() + " (" +
                        std::to_string(written) + "/" +
                        std::to_string(n) + " bytes)");
}

void
Env::sync(const char *site, File *f, int deep)
{
    FaultKind kind = maybeFault(site);
    if (kind == FaultKind::kSyncFail) {
        // The kernel may discard dirty pages on a failed fsync; model
        // the worst case by dropping everything since the last
        // successful sync. Retrying the sync cannot recover them —
        // hence the fsync gate.
        std::fflush(f->fp);
        ::ftruncate(::fileno(f->fp), static_cast<off_t>(f->syncedLen));
        f->length = f->syncedLen;
        latch(site, "sync failed for " + f->path.string() +
                        " (injected; dirty bytes dropped)");
    }
    if (kind == FaultKind::kEio)
        latch(site, "sync failed for " + f->path.string() +
                        " (injected EIO)");
    if (std::fflush(f->fp) != 0)
        latch(site, "flush failed for " + f->path.string());
    if (deep > 0) {
        int fd = ::fileno(f->fp);
        int rc = deep == 1 ? ::fdatasync(fd) : ::fsync(fd);
        if (rc != 0)
            latch(site, "fsync failed for " + f->path.string() + ": " +
                            std::strerror(errno));
    }
    f->syncedLen = f->length;
}

void
Env::close(File *f) noexcept
{
    if (f == nullptr)
        return;
    if (f->fp != nullptr)
        std::fclose(f->fp);
    {
        std::lock_guard<std::mutex> lk(mu_);
        closedUnsynced_[f->path.string()] = f->length != f->syncedLen;
    }
    delete f;
}

void
Env::rename(const char *site, const fs::path &from, const fs::path &to)
{
    FaultKind kind = maybeFault(site);
    if (kind == FaultKind::kEio)
        latch(site, "rename " + from.string() + " -> " + to.string() +
                        " failed (injected EIO)");
    if (kind == FaultKind::kLostRename) {
        // The syscall "succeeds" but the directory update never
        // reaches the platter: after the (simulated) power cut the
        // source is gone and the target never appeared. The next
        // syncDir() reports the loss — which is exactly why the
        // commit sequence must fsync the directory after renaming.
        std::error_code ec;
        fs::remove(from, ec);
        std::lock_guard<std::mutex> lk(mu_);
        lostRenamePending_ = true;
        return;
    }
    bool zero_target = false;
    if (kind == FaultKind::kLostFile) {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = closedUnsynced_.find(from.string());
        zero_target = it != closedUnsynced_.end() && it->second;
    }
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec)
        latch(site, "rename " + from.string() + " -> " + to.string() +
                        " failed: " + ec.message());
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = closedUnsynced_.find(from.string());
        if (it != closedUnsynced_.end()) {
            closedUnsynced_[to.string()] = it->second;
            closedUnsynced_.erase(it);
        }
    }
    if (zero_target) {
        // The rename committed but the file's data pages were never
        // synced: after power loss the name points at zeroed blocks.
        // A writer that fsyncs before renaming never gets here.
        fs::resize_file(to, 0, ec);
    }
}

void
Env::syncDir(const char *site, const fs::path &dir)
{
    FaultKind kind = maybeFault(site);
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (lostRenamePending_) {
            lostRenamePending_ = false;
            kind = FaultKind::kEio; // surface the lost rename here
        }
    }
    if (kind == FaultKind::kEio)
        latch(site, "directory sync failed for " + dir.string() +
                        " (directory update lost)");
    int fd = ::open(dir.string().c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        latch(site, "cannot open directory " + dir.string() + ": " +
                        std::strerror(errno));
    int rc = ::fsync(fd);
    int saved = errno;
    ::close(fd);
    if (rc != 0)
        latch(site, "fsync failed for directory " + dir.string() + ": " +
                        std::strerror(saved));
}

void
Env::resize(const char *site, const fs::path &path, uint64_t len)
{
    FaultKind kind = maybeFault(site);
    if (kind != FaultKind::kNone)
        latch(site, "resize of " + path.string() + " failed (injected " +
                        std::string(faultKindName(kind)) + ")");
    std::error_code ec;
    fs::resize_file(path, len, ec);
    if (ec)
        latch(site, "resize of " + path.string() + " failed: " +
                        ec.message());
}

bool
Env::remove(const char *site, const fs::path &path)
{
    // Best-effort: GC unlinks must never poison the log — a stale
    // file that survives is harmless (recovery picks the newest
    // chain), so failures are reported, not latched.
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (faulted_)
            return false;
        uint64_t hit = ++hits_[site];
        if (plan_.armed() && !fired_ && plan_.site == site &&
            hit == plan_.hit) {
            fired_ = true;
            return false;
        }
    }
    std::error_code ec;
    return fs::remove(path, ec) && !ec;
}

} // namespace nazar::persist
