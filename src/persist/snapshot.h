/**
 * @file
 * Checksummed cloud-state snapshots with atomic rename-on-commit.
 *
 * A snapshot is the full cloud state at a safe point — drift-log table
 * (via the CSV codec), upload buffer, per-device dedup windows, the
 * registry's blob store, counters, and the last published clean patch
 * — plus `lastWalSeq`, the highest WAL sequence number the snapshot
 * already includes. Recovery loads the snapshot (if valid) and replays
 * only WAL records with seq > lastWalSeq, so a crash between the
 * snapshot rename and the WAL truncation cannot double-apply.
 *
 * On-disk layout:
 *
 *     [8-byte magic "NZSNAP1\0"][u64 payloadLen][u32 crc32(payload)]
 *     [payload]
 *
 * Writes go to `snapshot.tmp` first and are renamed over
 * `snapshot.bin` only when complete (crash sites
 * "snapshot.tmp.partial", "snapshot.tmp.done", "snapshot.rename.post"
 * cover the three distinct failure windows). A corrupt or torn
 * snapshot file is treated as absent: recovery falls back to replaying
 * the full WAL.
 */
#ifndef NAZAR_PERSIST_SNAPSHOT_H
#define NAZAR_PERSIST_SNAPSHOT_H

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "persist/crash_point.h"
#include "persist/env.h"
#include "persist/serial.h"

namespace nazar::persist {

/** One per-device dedup window (mirror of Cloud::DedupState). */
struct DedupWindow
{
    uint64_t floor = 0;
    std::vector<uint64_t> seen; ///< Ascending sequence numbers.

    bool operator==(const DedupWindow &other) const = default;

    /**
     * Highest sequence number this window accounts for: with
     * per-device monotone send order, every seq <= highWater() has
     * been ingested (or dedup-rejected as already ingested). This is
     * the resume line the ingest server reports to reconnecting
     * clients.
     */
    uint64_t highWater() const
    {
        if (!seen.empty())
            return seen.back();
        return floor > 0 ? floor - 1 : 0;
    }
};

/** Everything a snapshot captures. */
struct SnapshotData
{
    uint64_t lastWalSeq = 0; ///< Highest WAL seq already included.
    int64_t logicalTime = 0;
    int64_t nextVersionId = 1;
    uint64_t totalIngested = 0;
    uint64_t dedupHits = 0;
    std::string driftLogCsv; ///< Pending drift-log table, CSV-encoded.
    std::vector<UploadRecord> uploads;
    std::map<int64_t, DedupWindow> dedup;
    /** Registry blob store, key -> bytes, sorted by key. */
    std::vector<std::pair<std::string, std::string>> blobs;
    std::optional<std::string> cleanPatchText; ///< BnPatch::save text.
    int64_t cleanPatchTime = 0; ///< logicalTime that produced it.
};

/** Encode the payload bytes (no header/CRC — the file writer adds it). */
std::string encodeSnapshot(const SnapshotData &data);

/** Decode a payload; throws NazarError on malformed bytes. */
SnapshotData decodeSnapshot(const std::string &payload);

/**
 * Write @p data to @p tmp, then atomically rename onto @p final,
 * fsyncing the tmp file before the rename and the directory after it
 * (a snapshot committed by rename alone can be empty after power
 * loss). Fires the three snapshot crash sites along the way; all I/O
 * goes through @p env ("env.snap.*" sites).
 */
void writeSnapshotFile(const std::filesystem::path &tmp,
                       const std::filesystem::path &final,
                       const SnapshotData &data, CrashInjector &injector,
                       Env &env);

/**
 * Load a snapshot file. Returns nullopt when the file is absent,
 * torn, or fails its checksum — the caller then recovers from the WAL
 * alone.
 */
std::optional<SnapshotData>
loadSnapshotFile(const std::filesystem::path &path);

// ---- incremental snapshot chain ------------------------------------
//
// Full-state snapshots don't scale: the blob store alone makes every
// snapshot O(published versions). Instead snapshots form a *chain*:
// a full file every K-th snapshot, delta files in between. A delta
// archives the WAL records since the previous chain element (the WAL
// is truncated at every snapshot, so at snapshot time it holds
// exactly that delta), and links to its base by (baseId, baseCrc).
// Recovery loads the newest full, replays each delta's records in id
// order through the ordinary WAL replay, then replays the live WAL.
//
// On-disk layout (file "snap-<id, 6 digits>.full" / ".delta"):
//
//     [8-byte magic "NZCHN1\0\0"][u8 kind][u64 id][u64 baseId]
//     [u32 baseCrc][u64 lastWalSeq][u64 payloadLen]
//     [u32 crc32(payload)][payload]
//
// kind 1 = full (payload = encodeSnapshot bytes; baseId/baseCrc 0),
// kind 2 = delta (payload = encodeDeltaRecords bytes; baseCrc is the
// payload CRC of the base file, pinning the chain link).

enum class ChainKind : uint8_t {
    kFull = 1,
    kDelta = 2,
};

/** Parsed header of one chain file. */
struct ChainHeader
{
    ChainKind kind = ChainKind::kFull;
    uint64_t id = 0;
    uint64_t baseId = 0;     ///< 0 for full snapshots.
    uint32_t baseCrc = 0;    ///< Payload CRC of the base; 0 for full.
    uint64_t lastWalSeq = 0; ///< Highest WAL seq this element includes.
    uint32_t payloadCrc = 0;
};

/** One loaded chain file. */
struct ChainFile
{
    ChainHeader header;
    std::string payload;
};

/** "snap-000042.full" / "snap-000042.delta". */
std::string chainFileName(uint64_t id, ChainKind kind);

/** Parse a chain filename; nullopt when @p name is not a chain file. */
std::optional<std::pair<uint64_t, ChainKind>>
parseChainFileName(const std::string &name);

/**
 * Write one chain element into @p dir (tmp + fsync + rename + dir
 * fsync, like writeSnapshotFile). @p header.payloadCrc is computed
 * here and the final value returned, so the caller can link the next
 * delta to it.
 */
uint32_t writeChainFile(const std::filesystem::path &dir,
                        ChainHeader header, const std::string &payload,
                        CrashInjector &injector, Env &env);

/**
 * Load one chain file. Returns nullopt when absent, torn, or failing
 * its checksum — the caller treats the element as missing.
 */
std::optional<ChainFile>
loadChainFile(const std::filesystem::path &path);

} // namespace nazar::persist

#endif // NAZAR_PERSIST_SNAPSHOT_H
