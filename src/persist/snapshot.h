/**
 * @file
 * Checksummed cloud-state snapshots with atomic rename-on-commit.
 *
 * A snapshot is the full cloud state at a safe point — drift-log table
 * (via the CSV codec), upload buffer, per-device dedup windows, the
 * registry's blob store, counters, and the last published clean patch
 * — plus `lastWalSeq`, the highest WAL sequence number the snapshot
 * already includes. Recovery loads the snapshot (if valid) and replays
 * only WAL records with seq > lastWalSeq, so a crash between the
 * snapshot rename and the WAL truncation cannot double-apply.
 *
 * On-disk layout:
 *
 *     [8-byte magic "NZSNAP1\0"][u64 payloadLen][u32 crc32(payload)]
 *     [payload]
 *
 * Writes go to `snapshot.tmp` first and are renamed over
 * `snapshot.bin` only when complete (crash sites
 * "snapshot.tmp.partial", "snapshot.tmp.done", "snapshot.rename.post"
 * cover the three distinct failure windows). A corrupt or torn
 * snapshot file is treated as absent: recovery falls back to replaying
 * the full WAL.
 */
#ifndef NAZAR_PERSIST_SNAPSHOT_H
#define NAZAR_PERSIST_SNAPSHOT_H

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "persist/crash_point.h"
#include "persist/serial.h"

namespace nazar::persist {

/** One per-device dedup window (mirror of Cloud::DedupState). */
struct DedupWindow
{
    uint64_t floor = 0;
    std::vector<uint64_t> seen; ///< Ascending sequence numbers.

    bool operator==(const DedupWindow &other) const = default;

    /**
     * Highest sequence number this window accounts for: with
     * per-device monotone send order, every seq <= highWater() has
     * been ingested (or dedup-rejected as already ingested). This is
     * the resume line the ingest server reports to reconnecting
     * clients.
     */
    uint64_t highWater() const
    {
        if (!seen.empty())
            return seen.back();
        return floor > 0 ? floor - 1 : 0;
    }
};

/** Everything a snapshot captures. */
struct SnapshotData
{
    uint64_t lastWalSeq = 0; ///< Highest WAL seq already included.
    int64_t logicalTime = 0;
    int64_t nextVersionId = 1;
    uint64_t totalIngested = 0;
    uint64_t dedupHits = 0;
    std::string driftLogCsv; ///< Pending drift-log table, CSV-encoded.
    std::vector<UploadRecord> uploads;
    std::map<int64_t, DedupWindow> dedup;
    /** Registry blob store, key -> bytes, sorted by key. */
    std::vector<std::pair<std::string, std::string>> blobs;
    std::optional<std::string> cleanPatchText; ///< BnPatch::save text.
    int64_t cleanPatchTime = 0; ///< logicalTime that produced it.
};

/** Encode the payload bytes (no header/CRC — the file writer adds it). */
std::string encodeSnapshot(const SnapshotData &data);

/** Decode a payload; throws NazarError on malformed bytes. */
SnapshotData decodeSnapshot(const std::string &payload);

/**
 * Write @p data to @p tmp, then atomically rename onto @p final.
 * Fires the three snapshot crash sites along the way.
 */
void writeSnapshotFile(const std::filesystem::path &tmp,
                       const std::filesystem::path &final,
                       const SnapshotData &data, CrashInjector &injector);

/**
 * Load a snapshot file. Returns nullopt when the file is absent,
 * torn, or fails its checksum — the caller then recovers from the WAL
 * alone.
 */
std::optional<SnapshotData>
loadSnapshotFile(const std::filesystem::path &path);

} // namespace nazar::persist

#endif // NAZAR_PERSIST_SNAPSHOT_H
