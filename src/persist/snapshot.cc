#include "persist/snapshot.h"

#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "obs/metrics.h"

namespace nazar::persist {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'N', 'Z', 'S', 'N', 'A', 'P', '1', 0};

} // namespace

std::string
encodeSnapshot(const SnapshotData &data)
{
    Writer w;
    w.putU64(data.lastWalSeq);
    w.putI64(data.logicalTime);
    w.putI64(data.nextVersionId);
    w.putU64(data.totalIngested);
    w.putU64(data.dedupHits);
    w.putString(data.driftLogCsv);
    w.putU64(data.uploads.size());
    for (const auto &up : data.uploads)
        putUpload(w, up);
    w.putU64(data.dedup.size());
    for (const auto &[device, window] : data.dedup) {
        w.putI64(device);
        w.putU64(window.floor);
        w.putU64(window.seen.size());
        for (uint64_t seq : window.seen)
            w.putU64(seq);
    }
    w.putU64(data.blobs.size());
    for (const auto &[key, blob] : data.blobs) {
        w.putString(key);
        w.putString(blob);
    }
    w.putBool(data.cleanPatchText.has_value());
    if (data.cleanPatchText.has_value()) {
        w.putString(*data.cleanPatchText);
        w.putI64(data.cleanPatchTime);
    }
    return w.take();
}

SnapshotData
decodeSnapshot(const std::string &payload)
{
    Reader r(payload);
    SnapshotData data;
    data.lastWalSeq = r.getU64();
    data.logicalTime = r.getI64();
    data.nextVersionId = r.getI64();
    data.totalIngested = r.getU64();
    data.dedupHits = r.getU64();
    data.driftLogCsv = r.getString();
    uint64_t uploads = r.getU64();
    for (uint64_t i = 0; i < uploads; ++i)
        data.uploads.push_back(getUpload(r));
    uint64_t devices = r.getU64();
    for (uint64_t i = 0; i < devices; ++i) {
        int64_t device = r.getI64();
        DedupWindow window;
        window.floor = r.getU64();
        uint64_t seen = r.getU64();
        NAZAR_CHECK(seen * 8 <= r.remaining(),
                    "persist: dedup window exceeds snapshot");
        window.seen.reserve(static_cast<size_t>(seen));
        for (uint64_t s = 0; s < seen; ++s)
            window.seen.push_back(r.getU64());
        data.dedup.emplace(device, std::move(window));
    }
    uint64_t blobs = r.getU64();
    for (uint64_t i = 0; i < blobs; ++i) {
        std::string key = r.getString();
        std::string blob = r.getString();
        data.blobs.emplace_back(std::move(key), std::move(blob));
    }
    if (r.getBool()) {
        data.cleanPatchText = r.getString();
        data.cleanPatchTime = r.getI64();
    }
    NAZAR_CHECK(r.atEnd(), "persist: trailing bytes in snapshot payload");
    return data;
}

void
writeSnapshotFile(const fs::path &tmp, const fs::path &final,
                  const SnapshotData &data, CrashInjector &injector)
{
    std::string payload = encodeSnapshot(data);

    Writer header;
    header.putBytes(kMagic, sizeof(kMagic));
    header.putU64(payload.size());
    header.putU32(crc32(payload.data(), payload.size()));

    std::FILE *f = std::fopen(tmp.string().c_str(), "wb");
    NAZAR_CHECK(f != nullptr,
                "persist: cannot create " + tmp.string());
    if (injector.fires("snapshot.tmp.partial")) {
        // Torn tmp file: header plus half the payload. Harmless —
        // recovery never reads snapshot.tmp, and the next open
        // removes it.
        std::fwrite(header.bytes().data(), 1, header.size(), f);
        std::fwrite(payload.data(), 1, payload.size() / 2, f);
        std::fflush(f);
        std::fclose(f);
        throw CrashInjected("snapshot.tmp.partial", injector.hitCount());
    }
    size_t written = std::fwrite(header.bytes().data(), 1,
                                 header.size(), f);
    written += std::fwrite(payload.data(), 1, payload.size(), f);
    bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    NAZAR_CHECK(written == header.size() + payload.size() && flushed,
                "persist: short write to " + tmp.string());
    // Crash here leaves a complete tmp that was never committed; the
    // old snapshot (or the bare WAL) still fully describes the state.
    injector.check("snapshot.tmp.done");

    fs::rename(tmp, final); // commit point: atomic on POSIX
    obs::Registry::global().counter("persist.snapshot.writes").add(1);
    obs::Registry::global()
        .counter("persist.snapshot.bytes")
        .add(header.size() + payload.size());
    // Crash here: the snapshot is committed but the WAL has not been
    // truncated yet. Replay skips records with seq <= lastWalSeq, so
    // nothing is double-applied.
    injector.check("snapshot.rename.post");
}

std::optional<SnapshotData>
loadSnapshotFile(const fs::path &path)
{
    std::FILE *f = std::fopen(path.string().c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);

    if (bytes.size() < sizeof(kMagic) + 12 ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    Reader head(bytes.data() + sizeof(kMagic), 12);
    uint64_t len = head.getU64();
    uint32_t crc = head.getU32();
    size_t payload_at = sizeof(kMagic) + 12;
    if (bytes.size() - payload_at != len)
        return std::nullopt; // torn or trailing garbage
    if (crc32(bytes.data() + payload_at, static_cast<size_t>(len)) != crc)
        return std::nullopt;
    try {
        return decodeSnapshot(bytes.substr(payload_at));
    } catch (const NazarError &) {
        return std::nullopt; // checksum passed but payload malformed
    }
}

} // namespace nazar::persist
