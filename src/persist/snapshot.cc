#include "persist/snapshot.h"

#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "obs/metrics.h"

namespace nazar::persist {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'N', 'Z', 'S', 'N', 'A', 'P', '1', 0};
constexpr char kChainMagic[8] = {'N', 'Z', 'C', 'H', 'N', '1', 0, 0};

/** Closes an Env file on scope exit (fault paths must not leak). */
struct FileGuard
{
    Env &env;
    Env::File *f;

    ~FileGuard()
    {
        if (f != nullptr)
            env.close(f);
    }

    void
    closeNow()
    {
        env.close(f);
        f = nullptr;
    }
};

/** Read an entire file ("" when absent or unreadable). */
std::string
slurpFile(const fs::path &path)
{
    std::FILE *f = std::fopen(path.string().c_str(), "rb");
    if (!f)
        return std::string();
    std::string bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    if (std::ferror(f))
        bytes.clear();
    std::fclose(f);
    return bytes;
}

/**
 * The rename-on-commit sequence every snapshot artifact uses: write
 * @p bytes to @p tmp, fsync it, rename onto @p final, fsync the
 * directory. Without the two fsyncs a "committed" file can be empty
 * or missing after power loss — the Env's kLostFile / kLostRename
 * faults regression-test exactly that.
 */
void
writeFileAtomic(const fs::path &tmp, const fs::path &final,
                const std::string &bytes, CrashInjector &injector,
                Env &env)
{
    FileGuard guard{env, env.open("env.snap.create", tmp, "wb")};
    if (injector.fires("snapshot.tmp.partial")) {
        // Torn tmp file: roughly half the bytes. Harmless — recovery
        // never reads tmp files, and the next open removes them.
        std::fwrite(bytes.data(), 1, bytes.size() / 2, guard.f->fp);
        std::fflush(guard.f->fp);
        guard.closeNow();
        throw CrashInjected("snapshot.tmp.partial", injector.hitCount());
    }
    env.write("env.snap.write", guard.f, bytes.data(), bytes.size());
    // fsync BEFORE the rename: the commit must never point at data
    // pages that were still dirty when the name changed.
    env.sync("env.snap.sync", guard.f, /*deep=*/2);
    guard.closeNow();
    // Crash here leaves a complete tmp that was never committed; the
    // old snapshot (or the bare WAL) still fully describes the state.
    injector.check("snapshot.tmp.done");

    env.rename("env.snap.rename", tmp, final); // commit point
    fs::path parent = final.parent_path();
    env.syncDir("env.snap.dirsync",
                parent.empty() ? fs::path(".") : parent);
    obs::Registry::global().counter("persist.snapshot.writes").add(1);
    obs::Registry::global()
        .counter("persist.snapshot.bytes")
        .add(bytes.size());
    // Crash here: the snapshot is committed but the WAL has not been
    // truncated yet. Replay skips records with seq <= lastWalSeq, so
    // nothing is double-applied.
    injector.check("snapshot.rename.post");
}

} // namespace

std::string
encodeSnapshot(const SnapshotData &data)
{
    Writer w;
    w.putU64(data.lastWalSeq);
    w.putI64(data.logicalTime);
    w.putI64(data.nextVersionId);
    w.putU64(data.totalIngested);
    w.putU64(data.dedupHits);
    w.putString(data.driftLogCsv);
    w.putU64(data.uploads.size());
    for (const auto &up : data.uploads)
        putUpload(w, up);
    w.putU64(data.dedup.size());
    for (const auto &[device, window] : data.dedup) {
        w.putI64(device);
        w.putU64(window.floor);
        w.putU64(window.seen.size());
        for (uint64_t seq : window.seen)
            w.putU64(seq);
    }
    w.putU64(data.blobs.size());
    for (const auto &[key, blob] : data.blobs) {
        w.putString(key);
        w.putString(blob);
    }
    w.putBool(data.cleanPatchText.has_value());
    if (data.cleanPatchText.has_value()) {
        w.putString(*data.cleanPatchText);
        w.putI64(data.cleanPatchTime);
    }
    return w.take();
}

SnapshotData
decodeSnapshot(const std::string &payload)
{
    Reader r(payload);
    SnapshotData data;
    data.lastWalSeq = r.getU64();
    data.logicalTime = r.getI64();
    data.nextVersionId = r.getI64();
    data.totalIngested = r.getU64();
    data.dedupHits = r.getU64();
    data.driftLogCsv = r.getString();
    uint64_t uploads = r.getU64();
    for (uint64_t i = 0; i < uploads; ++i)
        data.uploads.push_back(getUpload(r));
    uint64_t devices = r.getU64();
    for (uint64_t i = 0; i < devices; ++i) {
        int64_t device = r.getI64();
        DedupWindow window;
        window.floor = r.getU64();
        uint64_t seen = r.getU64();
        NAZAR_CHECK(seen * 8 <= r.remaining(),
                    "persist: dedup window exceeds snapshot");
        window.seen.reserve(static_cast<size_t>(seen));
        for (uint64_t s = 0; s < seen; ++s)
            window.seen.push_back(r.getU64());
        data.dedup.emplace(device, std::move(window));
    }
    uint64_t blobs = r.getU64();
    for (uint64_t i = 0; i < blobs; ++i) {
        std::string key = r.getString();
        std::string blob = r.getString();
        data.blobs.emplace_back(std::move(key), std::move(blob));
    }
    if (r.getBool()) {
        data.cleanPatchText = r.getString();
        data.cleanPatchTime = r.getI64();
    }
    NAZAR_CHECK(r.atEnd(), "persist: trailing bytes in snapshot payload");
    return data;
}

void
writeSnapshotFile(const fs::path &tmp, const fs::path &final,
                  const SnapshotData &data, CrashInjector &injector,
                  Env &env)
{
    std::string payload = encodeSnapshot(data);

    Writer w;
    w.putBytes(kMagic, sizeof(kMagic));
    w.putU64(payload.size());
    w.putU32(crc32(payload.data(), payload.size()));
    w.putBytes(payload.data(), payload.size());
    writeFileAtomic(tmp, final, w.bytes(), injector, env);
}

std::optional<SnapshotData>
loadSnapshotFile(const fs::path &path)
{
    std::string bytes = slurpFile(path);

    if (bytes.size() < sizeof(kMagic) + 12 ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    Reader head(bytes.data() + sizeof(kMagic), 12);
    uint64_t len = head.getU64();
    uint32_t crc = head.getU32();
    size_t payload_at = sizeof(kMagic) + 12;
    if (bytes.size() - payload_at != len)
        return std::nullopt; // torn or trailing garbage
    if (crc32(bytes.data() + payload_at, static_cast<size_t>(len)) != crc)
        return std::nullopt;
    try {
        return decodeSnapshot(bytes.substr(payload_at));
    } catch (const NazarError &) {
        return std::nullopt; // checksum passed but payload malformed
    }
}

std::string
chainFileName(uint64_t id, ChainKind kind)
{
    std::string digits = std::to_string(id);
    if (digits.size() < 6)
        digits.insert(0, 6 - digits.size(), '0');
    return "snap-" + digits +
           (kind == ChainKind::kFull ? ".full" : ".delta");
}

std::optional<std::pair<uint64_t, ChainKind>>
parseChainFileName(const std::string &name)
{
    std::string stem;
    ChainKind kind;
    if (name.size() > 5 && name.substr(name.size() - 5) == ".full") {
        stem = name.substr(0, name.size() - 5);
        kind = ChainKind::kFull;
    } else if (name.size() > 6 &&
               name.substr(name.size() - 6) == ".delta") {
        stem = name.substr(0, name.size() - 6);
        kind = ChainKind::kDelta;
    } else {
        return std::nullopt;
    }
    if (stem.size() < 6 || stem.substr(0, 5) != "snap-")
        return std::nullopt;
    uint64_t id = 0;
    for (size_t i = 5; i < stem.size(); ++i) {
        if (stem[i] < '0' || stem[i] > '9')
            return std::nullopt;
        id = id * 10 + static_cast<uint64_t>(stem[i] - '0');
    }
    return std::make_pair(id, kind);
}

uint32_t
writeChainFile(const fs::path &dir, ChainHeader header,
               const std::string &payload, CrashInjector &injector,
               Env &env)
{
    header.payloadCrc = crc32(payload.data(), payload.size());

    Writer w;
    w.putBytes(kChainMagic, sizeof(kChainMagic));
    w.putU8(static_cast<uint8_t>(header.kind));
    w.putU64(header.id);
    w.putU64(header.baseId);
    w.putU32(header.baseCrc);
    w.putU64(header.lastWalSeq);
    w.putU64(payload.size());
    w.putU32(header.payloadCrc);
    w.putBytes(payload.data(), payload.size());

    std::string name = chainFileName(header.id, header.kind);
    writeFileAtomic(dir / (name + ".tmp"), dir / name, w.bytes(),
                    injector, env);
    return header.payloadCrc;
}

std::optional<ChainFile>
loadChainFile(const fs::path &path)
{
    std::string bytes = slurpFile(path);
    constexpr size_t kHeaderSize = sizeof(kChainMagic) + 1 + 8 + 8 + 4 +
                                   8 + 8 + 4;
    if (bytes.size() < kHeaderSize ||
        std::memcmp(bytes.data(), kChainMagic, sizeof(kChainMagic)) != 0)
        return std::nullopt;
    try {
        Reader r(bytes.data() + sizeof(kChainMagic),
                 kHeaderSize - sizeof(kChainMagic));
        ChainFile out;
        uint8_t kind = r.getU8();
        if (kind != static_cast<uint8_t>(ChainKind::kFull) &&
            kind != static_cast<uint8_t>(ChainKind::kDelta))
            return std::nullopt;
        out.header.kind = static_cast<ChainKind>(kind);
        out.header.id = r.getU64();
        out.header.baseId = r.getU64();
        out.header.baseCrc = r.getU32();
        out.header.lastWalSeq = r.getU64();
        uint64_t len = r.getU64();
        out.header.payloadCrc = r.getU32();
        if (bytes.size() - kHeaderSize != len)
            return std::nullopt; // torn or trailing garbage
        if (crc32(bytes.data() + kHeaderSize,
                  static_cast<size_t>(len)) != out.header.payloadCrc)
            return std::nullopt;
        out.payload = bytes.substr(kHeaderSize);
        return out;
    } catch (const NazarError &) {
        return std::nullopt;
    }
}

} // namespace nazar::persist
