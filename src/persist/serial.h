/**
 * @file
 * Binary serialization helpers for the durability layer.
 *
 * Everything the WAL and the snapshot write goes through this small
 * byte-buffer codec: little-endian fixed-width integers, bit-exact
 * doubles (memcpy of the IEEE-754 pattern, so NaN payloads survive a
 * round trip), length-prefixed strings, and composite encoders for
 * the domain types the cloud persists (driftlog::Value,
 * rca::AttributeSet, drift-log entries, uploads). A table-based CRC32
 * (the usual reflected 0xEDB88320 polynomial) guards every WAL record
 * and the snapshot payload; no external compression/CRC library is
 * used.
 *
 * Readers are bounds-checked: a short or corrupt buffer raises
 * NazarError, which the WAL open path converts into torn-tail
 * truncation and the snapshot loader converts into "snapshot invalid,
 * fall back to WAL-only recovery".
 */
#ifndef NAZAR_PERSIST_SERIAL_H
#define NAZAR_PERSIST_SERIAL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "driftlog/drift_log.h"
#include "driftlog/value.h"
#include "rca/attribute_set.h"

namespace nazar::persist {

/** CRC32 (reflected 0xEDB88320) over @p data. */
uint32_t crc32(const void *data, size_t len);

/** Incremental variant; start from 0 and feed chunks in order. */
uint32_t crc32Update(uint32_t crc, const void *data, size_t len);

/** Append-only byte buffer with typed little-endian writers. */
class Writer
{
  public:
    void putU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putI64(int64_t v) { putU64(static_cast<uint64_t>(v)); }
    /** Bit-exact: the IEEE-754 pattern is copied, NaN payloads intact. */
    void putF64(double v);
    void putBytes(const void *data, size_t len);
    /** u64 length prefix + raw bytes. */
    void putString(const std::string &s);

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Bounds-checked reader over a byte range; throws NazarError on underrun. */
class Reader
{
  public:
    Reader(const char *data, size_t len) : data_(data), len_(len) {}
    explicit Reader(const std::string &s) : Reader(s.data(), s.size()) {}

    uint8_t getU8();
    bool getBool() { return getU8() != 0; }
    uint32_t getU32();
    uint64_t getU64();
    int64_t getI64() { return static_cast<int64_t>(getU64()); }
    double getF64();
    std::string getString();

    /** Advance past @p n bytes without decoding them (bounds-checked).
     *  Lets decoders step over unknown forward-compat fields. */
    void skip(size_t n) { need(n); }

    size_t remaining() const { return len_ - pos_; }
    bool atEnd() const { return pos_ == len_; }

  private:
    const char *need(size_t n);

    const char *data_;
    size_t len_;
    size_t pos_ = 0;
};

/** Tagged driftlog::Value (null / int / double / bool / string). */
void putValue(Writer &w, const driftlog::Value &v);
driftlog::Value getValue(Reader &r);

void putAttributeSet(Writer &w, const rca::AttributeSet &attrs);
rca::AttributeSet getAttributeSet(Reader &r);

/**
 * A drift-log entry plus the sub-day timestamp `DriftLog::entry()`
 * drops (the table only keeps the formatted time string, so the WAL
 * carries day + secondOfDay explicitly to rebuild rows losslessly).
 */
void putEntry(Writer &w, const driftlog::DriftLogEntry &e);
driftlog::DriftLogEntry getEntry(Reader &r);

/** Mirror of sim::Upload, kept here so persist doesn't depend on sim. */
struct UploadRecord
{
    std::vector<double> features;
    rca::AttributeSet context;
    bool driftFlag = false;
};

void putUpload(Writer &w, const UploadRecord &u);
UploadRecord getUpload(Reader &r);

} // namespace nazar::persist

#endif // NAZAR_PERSIST_SERIAL_H
