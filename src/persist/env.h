/**
 * @file
 * Fault-injecting I/O environment for the durability layer.
 *
 * Every WAL / snapshot open, write, sync, rename, resize, and unlink
 * goes through a persist::Env. The Env does three jobs:
 *
 *  1. **Injection.** A DiskFaultPlan arms one fault — a (site, hit,
 *     kind) triple, mirroring CrashInjector's counted-hit model — and
 *     the Nth operation at that site misbehaves the way a real disk
 *     would: a short write, ENOSPC, EIO, a failed fsync that *drops
 *     the dirty pages*, a rename whose directory entry never reaches
 *     the platter, or a renamed file whose contents were lost because
 *     the writer skipped the pre-rename fsync. A disarmed Env only
 *     counts hits; it draws no randomness and changes no behaviour.
 *
 *  2. **Fail-safe latching (the fsync gate).** The first injected or
 *     real I/O failure latches the Env: `faulted()` turns true and
 *     every subsequent operation throws DiskFault immediately. In
 *     particular a failed fsync is never retried — POSIX gives no
 *     guarantee about which dirty pages survive a failed fsync, so
 *     the only safe move is to poison the log and recover from the
 *     last durable state once the harness clears the fault (by
 *     rebuilding the persistence layer, i.e. a fresh Env).
 *
 *  3. **Durability bookkeeping.** The Env tracks, per open file, the
 *     byte length at the last successful sync. kSyncFail truncates
 *     the file back to that length before failing (the injected
 *     equivalent of the kernel discarding dirty pages), and
 *     kLostFile zeroes a renamed file only if it still had unsynced
 *     bytes at rename time — so the "fsync the tmp before rename"
 *     fix is regression-tested by construction: properly synced
 *     files survive the fault untouched.
 *
 * Determinism contract: sites are hit in a fixed order for a fixed
 * operation sequence, so (scenario, site, hit) fully reproduces a
 * disk fault, exactly like CrashInjector's (scenario, hit).
 */
#ifndef NAZAR_PERSIST_ENV_H
#define NAZAR_PERSIST_ENV_H

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

namespace nazar::persist {

/** What an armed fault does to the operation it fires on. */
enum class FaultKind : uint8_t {
    kNone = 0,
    /** write: half the bytes reach the file, the call reports short. */
    kShortWrite = 1,
    /** write: no bytes reach the file; fails like ENOSPC. */
    kEnospc = 2,
    /** any op: fails like EIO with no side effect. */
    kEio = 3,
    /**
     * sync: the dirty bytes since the last successful sync are
     * DROPPED (file truncated back) and the call fails. Retrying the
     * sync cannot bring them back — the fsync-gate rationale.
     */
    kSyncFail = 4,
    /**
     * rename: reports success but the directory entry is lost — the
     * source is gone and the target never appears. The next syncDir()
     * call fails, which is how a correctly-written commit sequence
     * (rename, then fsync the directory) detects the loss before
     * depending on it.
     */
    kLostRename = 5,
    /**
     * rename: performed, but the file's contents are zeroed IF it
     * still had unsynced bytes at rename time. A writer that fsyncs
     * the tmp file before renaming is immune.
     */
    kLostFile = 6,
};

/** Parse "short_write" / "enospc" / ...; throws NazarError otherwise. */
FaultKind faultKindFromString(const std::string &name);

/** Name for a FaultKind (inverse of faultKindFromString). */
const char *faultKindName(FaultKind kind);

/** One armed disk fault: the @p hit-th operation at @p site fires. */
struct DiskFaultPlan
{
    std::string site; ///< e.g. "env.wal.sync"; empty = disarmed.
    uint64_t hit = 1; ///< 1-based per-site hit index.
    FaultKind kind = FaultKind::kNone;

    bool armed() const { return !site.empty() && kind != FaultKind::kNone; }
};

/**
 * Thrown when the disk misbehaves (injected or real). Unlike
 * CrashInjected the process is still alive — the durability layer is
 * latched and the owner must surface the fault (stop acking, report
 * diskFaulted()) until the harness rebuilds from the last durable
 * state. Deliberately NOT a NazarError: generic input-error handlers
 * must not swallow a poisoned log.
 */
class DiskFault : public std::runtime_error
{
  public:
    DiskFault(std::string site, const std::string &detail)
        : std::runtime_error("disk fault at '" + site + "': " + detail),
          site_(std::move(site))
    {}

    /** The Env site that failed, e.g. "env.wal.sync". */
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** The injectable I/O environment. One per CloudPersistence. */
class Env
{
  public:
    /** Open-file handle; tracks the synced length for fault semantics. */
    struct File
    {
        std::FILE *fp = nullptr;
        std::filesystem::path path;
        uint64_t length = 0;    ///< Bytes we believe are in the file.
        uint64_t syncedLen = 0; ///< Length at the last successful sync.
    };

    Env() = default;
    explicit Env(const DiskFaultPlan &plan) : plan_(plan) {}

    Env(const Env &) = delete;
    Env &operator=(const Env &) = delete;

    /** Arm (or clear, with a default-constructed plan) the fault. */
    void arm(const DiskFaultPlan &plan);
    const DiskFaultPlan &plan() const { return plan_; }

    /** True once any operation failed; all later ops throw DiskFault. */
    bool faulted() const;

    /** Site of the latched fault ("" when not faulted). */
    std::string faultSite() const;

    /** Ops counted at @p site so far (sweep bound for tests). */
    uint64_t hitCount(const std::string &site) const;

    /** Total ops counted across all sites. */
    uint64_t totalHits() const;

    /**
     * fopen wrapper. Throws DiskFault on injected (kEio) or real
     * failure. @p mode is "wb" / "ab" / "rb" as for fopen.
     */
    File *open(const char *site, const std::filesystem::path &path,
               const char *mode);

    /** fwrite wrapper; short/failed writes latch and throw. */
    void write(const char *site, File *f, const void *data, size_t n);

    /**
     * fflush (+ fdatasync/fsync when @p deep says so) wrapper. On
     * success the file's syncedLen advances; kSyncFail drops the
     * unsynced tail before failing. @p deep: 0 = flush only,
     * 1 = fdatasync, 2 = fsync.
     */
    void sync(const char *site, File *f, int deep);

    /**
     * fclose wrapper; never throws. Remembers whether the file had
     * unsynced bytes so a later rename can apply kLostFile.
     */
    void close(File *f) noexcept;

    /** Atomic-rename wrapper (commit point). See kLostRename/kLostFile. */
    void rename(const char *site, const std::filesystem::path &from,
                const std::filesystem::path &to);

    /** fsync-the-directory wrapper; detects a pending lost rename. */
    void syncDir(const char *site, const std::filesystem::path &dir);

    /** Truncate-to-length wrapper (WAL torn-tail drop / truncateAll). */
    void resize(const char *site, const std::filesystem::path &path,
                uint64_t len);

    /**
     * Best-effort unlink: returns false (without latching) on an
     * injected or real failure. GC uses this — a stale file that
     * survives an unlink is harmless, so it must not poison the log.
     */
    bool remove(const char *site, const std::filesystem::path &path);

  private:
    /** Count the hit; throw if latched; return the fault to inject. */
    FaultKind maybeFault(const char *site);
    [[noreturn]] void latch(const std::string &site,
                            const std::string &detail);

    mutable std::mutex mu_;
    DiskFaultPlan plan_;
    bool fired_ = false; ///< The armed fault fires at most once.
    bool faulted_ = false;
    std::string faultSite_;
    bool lostRenamePending_ = false;
    std::map<std::string, uint64_t> hits_;
    /** path -> had-unsynced-bytes-at-close, for kLostFile decisions. */
    std::map<std::string, bool> closedUnsynced_;
};

} // namespace nazar::persist

#endif // NAZAR_PERSIST_ENV_H
