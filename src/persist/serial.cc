#include "persist/serial.h"

#include <array>
#include <cstring>

#include "common/error.h"

namespace nazar::persist {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    return table;
}

} // namespace

uint32_t
crc32Update(uint32_t crc, const void *data, size_t len)
{
    const auto &table = crcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    crc ^= 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

uint32_t
crc32(const void *data, size_t len)
{
    return crc32Update(0, data, len);
}

void
Writer::putU32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        putU8(static_cast<uint8_t>(v >> (8 * i)));
}

void
Writer::putU64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        putU8(static_cast<uint8_t>(v >> (8 * i)));
}

void
Writer::putF64(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
Writer::putBytes(const void *data, size_t len)
{
    buf_.append(static_cast<const char *>(data), len);
}

void
Writer::putString(const std::string &s)
{
    putU64(s.size());
    buf_.append(s);
}

const char *
Reader::need(size_t n)
{
    NAZAR_CHECK(len_ - pos_ >= n,
                "persist: truncated record (need " + std::to_string(n) +
                    " bytes, have " + std::to_string(len_ - pos_) + ")");
    const char *p = data_ + pos_;
    pos_ += n;
    return p;
}

uint8_t
Reader::getU8()
{
    return static_cast<uint8_t>(*need(1));
}

uint32_t
Reader::getU32()
{
    const char *p = need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    return v;
}

uint64_t
Reader::getU64()
{
    const char *p = need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    return v;
}

double
Reader::getF64()
{
    uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Reader::getString()
{
    uint64_t n = getU64();
    NAZAR_CHECK(n <= remaining(),
                "persist: string length exceeds buffer");
    const char *p = need(static_cast<size_t>(n));
    return std::string(p, static_cast<size_t>(n));
}

void
putValue(Writer &w, const driftlog::Value &v)
{
    w.putU8(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case driftlog::ValueType::kNull:
        break;
      case driftlog::ValueType::kInt:
        w.putI64(v.asInt());
        break;
      case driftlog::ValueType::kDouble:
        w.putF64(v.asDouble());
        break;
      case driftlog::ValueType::kBool:
        w.putBool(v.asBool());
        break;
      case driftlog::ValueType::kString:
        w.putString(v.asString());
        break;
    }
}

driftlog::Value
getValue(Reader &r)
{
    auto type = static_cast<driftlog::ValueType>(r.getU8());
    switch (type) {
      case driftlog::ValueType::kNull:
        return driftlog::Value();
      case driftlog::ValueType::kInt:
        return driftlog::Value(r.getI64());
      case driftlog::ValueType::kDouble:
        return driftlog::Value(r.getF64());
      case driftlog::ValueType::kBool:
        return driftlog::Value(r.getBool());
      case driftlog::ValueType::kString:
        return driftlog::Value(r.getString());
    }
    throw NazarError("persist: unknown Value type tag " +
                     std::to_string(static_cast<int>(type)));
}

void
putAttributeSet(Writer &w, const rca::AttributeSet &attrs)
{
    w.putU32(static_cast<uint32_t>(attrs.size()));
    for (const auto &attr : attrs.attributes()) {
        w.putString(attr.column);
        putValue(w, attr.value);
    }
}

rca::AttributeSet
getAttributeSet(Reader &r)
{
    uint32_t n = r.getU32();
    std::vector<rca::Attribute> attrs;
    attrs.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        rca::Attribute attr;
        attr.column = r.getString();
        attr.value = getValue(r);
        attrs.push_back(std::move(attr));
    }
    return rca::AttributeSet(std::move(attrs));
}

void
putEntry(Writer &w, const driftlog::DriftLogEntry &e)
{
    w.putU32(static_cast<uint32_t>(e.time.dayIndex()));
    w.putU32(static_cast<uint32_t>(e.time.secondOfDay()));
    w.putString(e.deviceId);
    w.putString(e.deviceModel);
    w.putString(e.location);
    w.putString(e.weather);
    w.putI64(e.modelVersion);
    w.putBool(e.drift);
}

driftlog::DriftLogEntry
getEntry(Reader &r)
{
    driftlog::DriftLogEntry e;
    int day = static_cast<int>(r.getU32());
    int second = static_cast<int>(r.getU32());
    e.time = SimDate(day, second);
    e.deviceId = r.getString();
    e.deviceModel = r.getString();
    e.location = r.getString();
    e.weather = r.getString();
    e.modelVersion = r.getI64();
    e.drift = r.getBool();
    return e;
}

void
putUpload(Writer &w, const UploadRecord &u)
{
    w.putU64(u.features.size());
    for (double f : u.features)
        w.putF64(f);
    putAttributeSet(w, u.context);
    w.putBool(u.driftFlag);
}

UploadRecord
getUpload(Reader &r)
{
    UploadRecord u;
    uint64_t n = r.getU64();
    NAZAR_CHECK(n * 8 <= r.remaining(),
                "persist: upload feature count exceeds buffer");
    u.features.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i)
        u.features.push_back(r.getF64());
    u.context = getAttributeSet(r);
    u.driftFlag = r.getBool();
    return u;
}

} // namespace nazar::persist
