/**
 * @file
 * Durable cloud state: the WAL + snapshot orchestrator sim::Cloud
 * plugs into, plus standalone recovery for tools and tests.
 *
 * Protocol (WAL-first):
 *
 *  - Every ingest *attempt* (accepted or deduped) is appended as a
 *    kIngest record before the in-memory apply. Replay re-runs the
 *    dedup logic, so accepted rows, rejected duplicates, and the
 *    per-device windows are all reproduced exactly.
 *  - A completed runCycle appends one atomic kCycleCommit record
 *    carrying the published version blobs, the new counters, and the
 *    clean patch. A cycle whose commit record never landed (torn or
 *    never written) rolls back wholesale on recovery: the claimed
 *    buffers reappear and the cycle re-runs deterministically,
 *    producing identical version ids.
 *  - Baseline flushes append kFlush.
 *  - Every snapshotEvery appends, the full state is snapshotted
 *    (rename-on-commit) and the WAL is truncated; the snapshot's
 *    lastWalSeq makes replay idempotent across every crash point in
 *    that sequence.
 *
 * Determinism contract: with persistence off, Cloud never calls in
 * here. With persistence on and the injector disarmed, no RNG is
 * consumed and no result changes — only files are written.
 */
#ifndef NAZAR_PERSIST_CLOUD_PERSIST_H
#define NAZAR_PERSIST_CLOUD_PERSIST_H

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driftlog/drift_log.h"
#include "persist/crash_point.h"
#include "persist/env.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace nazar::persist {

/** Durability configuration (off by default: dir empty). */
struct PersistConfig
{
    /** State directory (wal.log + snapshot chain). Empty = off. */
    std::string dir;
    /** WAL appends between snapshots (0 = snapshot only on demand). */
    uint64_t snapshotEvery = 256;
    /**
     * Every Kth snapshot is a full one; the rest are deltas chained
     * on top of it (1 = always full, the pre-chain behaviour).
     */
    uint64_t fullEvery = 8;
    /** Arm the crash injector at the Nth site hit (0 = disarmed). */
    uint64_t crashAtHit = 0;
    /** Arm the I/O environment's disk fault (disarmed by default). */
    DiskFaultPlan fault;
    /**
     * WAL durability: kFlush matches the process-kill fault model;
     * kFdatasync/kFsync survive power loss (group commit amortizes
     * the per-sync cost — see Wal::appendBuffered).
     */
    SyncMode sync = SyncMode::kFlush;

    bool enabled() const { return !dir.empty(); }
};

/** Everything recovery reconstructs from snapshot + WAL replay. */
struct RecoveredState
{
    driftlog::DriftLog log;            ///< Pending (unanalyzed) rows.
    std::vector<UploadRecord> uploads; ///< Pending upload buffer.
    std::map<int64_t, DedupWindow> dedup;
    uint64_t dedupHits = 0;
    uint64_t totalIngested = 0;
    int64_t nextVersionId = 1;
    int64_t logicalTime = 0;
    /** Registry blob store contents, key -> bytes. */
    std::vector<std::pair<std::string, std::string>> blobs;
    std::optional<std::string> cleanPatchText;
    int64_t cleanPatchTime = 0;
    uint64_t lastWalSeq = 0;
    bool snapshotLoaded = false;
    uint64_t replayedRecords = 0;
    uint64_t truncatedBytes = 0; ///< Torn WAL tail dropped on open.
};

/** The blobs one published version wrote to the registry store. */
struct VersionBlobs
{
    int64_t id = 0;
    std::string meta;
    std::string patch;
};

/**
 * Read-only recovery: load the snapshot (when valid) and replay the
 * WAL. Used by `nazar_ops recover` and by tests; Cloud recovery goes
 * through CloudPersistence, which additionally opens the WAL for
 * append (truncating any torn tail).
 *
 * @param dedup_window Dedup window size to replay ingests with; must
 *                     match the CloudConfig the WAL was written under.
 */
RecoveredState recoverDir(const std::filesystem::path &dir,
                          size_t dedup_window = 4096);

/**
 * Encode WAL records as a delta-snapshot payload. A delta archives
 * the live WAL's records (everything since the chain base, because
 * the WAL is truncated at every snapshot) so recovery can replay them
 * through the ordinary WAL machinery.
 */
std::string encodeDeltaRecords(const std::vector<WalRecord> &records);

/**
 * Decode a delta-snapshot payload; throws NazarError on malformed
 * bytes, unknown record types, or non-increasing seqs.
 */
std::vector<WalRecord> decodeDeltaRecords(const std::string &payload);

/** What `nazar_ops scrub` reports about a state directory. */
struct ScrubReport
{
    bool ok = true; ///< No integrity issues (notes are fine).
    /** Integrity violations: corrupt files, broken chain links. */
    std::vector<std::string> issues;
    /** Benign observations: torn WAL tail, stale leftovers. */
    std::vector<std::string> notes;
    uint64_t walRecords = 0;
    uint64_t walTornBytes = 0;
    uint64_t chainFiles = 0;       ///< Valid chain files present.
    uint64_t chainLength = 0;      ///< Elements in the recovery chain.
    uint64_t chainBytes = 0;       ///< Payload bytes across chain files.
    bool legacySnapshot = false;   ///< A readable snapshot.bin exists.
};

/**
 * Offline, read-only integrity walk of a state directory: verifies
 * the WAL's record CRCs and seq monotonicity, every chain file's
 * header + payload CRC, each delta's link to its base (baseId exists,
 * baseCrc matches), and that the recovery chain decodes. Never
 * modifies anything.
 */
ScrubReport scrubStateDir(const std::filesystem::path &dir);

/** Per-state-directory durability engine, owned by sim::Cloud. */
class CloudPersistence
{
  public:
    /**
     * Open (creating if needed) the state directory, recover, and
     * position the WAL for append. @p dedup_window must match the
     * owning cloud's config so replayed ingests dedup identically.
     */
    CloudPersistence(const PersistConfig &config, size_t dedup_window);

    /** State recovered at open; Cloud consumes it in its constructor. */
    RecoveredState &recovered() { return recovered_; }

    /** Free the recovered buffers once the owner has adopted them. */
    void dropRecovered() { recovered_ = RecoveredState{}; }

    /**
     * Log one ingest attempt (WAL-first: call before applying).
     * @p device is -1 for the non-deduped ingest() path; @p features
     * is null when the entry carries no upload.
     */
    void logIngest(int64_t device, uint64_t seq,
                   const driftlog::DriftLogEntry &entry,
                   const std::vector<double> *features,
                   const rca::AttributeSet *context, bool drift_flag);

    /**
     * Encode one ingest attempt as a kIngest payload (the bytes
     * logIngest appends). Exposed so callers can pre-encode a batch
     * for logIngestBatch.
     */
    static std::string encodeIngest(int64_t device, uint64_t seq,
                                    const driftlog::DriftLogEntry &entry,
                                    const std::vector<double> *features,
                                    const rca::AttributeSet *context,
                                    bool drift_flag);

    /**
     * Group commit: append every payload (from encodeIngest) with ONE
     * sync for the whole batch. A crash mid-batch leaves at most a
     * torn tail; records before the tear replay, the rest were never
     * acknowledged. Callers must serialize against other WAL writers
     * (the ingest server's committer thread is the sole writer).
     */
    void logIngestBatch(const std::vector<std::string> &payloads);

    /** Log one committed cycle (call after publishing to the store). */
    void logCycleCommit(int64_t logical_time, int64_t next_version_id,
                        const std::vector<VersionBlobs> &versions,
                        const std::optional<std::string> &clean_patch_text,
                        int64_t clean_patch_time);

    /** Log one baseline flush (buffers cleared without analysis). */
    void logFlush();

    /**
     * Log a registry GC floor: versions with id < @p min_version_id
     * are evicted from the blob store. WAL-first — call before
     * evicting in memory so replay reproduces the eviction.
     */
    void logRegistryGc(int64_t min_version_id);

    /** True when enough appends accumulated to warrant a snapshot. */
    bool snapshotDue() const;

    /**
     * True when the next snapshot must be a full one (no chain yet,
     * or fullEvery deltas would otherwise pile up). The owner then
     * builds a full SnapshotData for writeSnapshot(); otherwise it
     * calls writeDeltaSnapshot(), which needs no state dump at all.
     */
    bool nextSnapshotIsFull() const;

    /**
     * Write a FULL chain snapshot (rename-on-commit), truncate the
     * WAL, and GC every superseded chain file (safety invariant: a
     * committed full IS the whole recovery chain, so everything older
     * is removable). data.lastWalSeq is filled in from the WAL.
     */
    void writeSnapshot(SnapshotData data);

    /**
     * Write a DELTA chain snapshot: archive the live WAL's records
     * (filtered to seqs above the chain head) under a chained header,
     * then truncate the WAL. O(records since last snapshot) — the
     * blob store is not touched.
     */
    void writeDeltaSnapshot();

    /** True once any I/O failed: the fsync gate is latched. */
    bool diskFaulted() const { return env_.faulted(); }

    /** Site of the latched disk fault ("" when healthy). */
    std::string diskFaultSite() const { return env_.faultSite(); }

    CrashInjector &injector() { return injector_; }
    Env &env() { return env_; }
    const PersistConfig &config() const { return config_; }
    const Wal &wal() const { return *wal_; }

    /** Appends since the last snapshot (exposed for tests). */
    uint64_t appendsSinceSnapshot() const { return appendsSince_; }

    /** Chain files removed by snapshot GC over this instance's life. */
    uint64_t snapshotGcRemoved() const { return snapshotGcRemoved_; }

    /** Newest chain element id (0 = no chain yet). */
    uint64_t chainHeadId() const { return chainHeadId_; }

  private:
    uint64_t append(WalRecordType type, const std::string &payload);

    /** Unlink chain files older than the head + the legacy snapshot. */
    void gcSupersededChain();

    PersistConfig config_;
    CrashInjector injector_;
    Env env_;
    std::unique_ptr<Wal> wal_;
    RecoveredState recovered_;
    uint64_t appendsSince_ = 0;
    uint64_t chainHeadId_ = 0;
    uint32_t chainHeadCrc_ = 0;
    /** lastWalSeq of the chain head (next delta starts above it). */
    uint64_t chainLastWalSeq_ = 0;
    uint64_t deltasSinceFull_ = 0;
    uint64_t snapshotGcRemoved_ = 0;
};

} // namespace nazar::persist

#endif // NAZAR_PERSIST_CLOUD_PERSIST_H
