/**
 * @file
 * Durable cloud state: the WAL + snapshot orchestrator sim::Cloud
 * plugs into, plus standalone recovery for tools and tests.
 *
 * Protocol (WAL-first):
 *
 *  - Every ingest *attempt* (accepted or deduped) is appended as a
 *    kIngest record before the in-memory apply. Replay re-runs the
 *    dedup logic, so accepted rows, rejected duplicates, and the
 *    per-device windows are all reproduced exactly.
 *  - A completed runCycle appends one atomic kCycleCommit record
 *    carrying the published version blobs, the new counters, and the
 *    clean patch. A cycle whose commit record never landed (torn or
 *    never written) rolls back wholesale on recovery: the claimed
 *    buffers reappear and the cycle re-runs deterministically,
 *    producing identical version ids.
 *  - Baseline flushes append kFlush.
 *  - Every snapshotEvery appends, the full state is snapshotted
 *    (rename-on-commit) and the WAL is truncated; the snapshot's
 *    lastWalSeq makes replay idempotent across every crash point in
 *    that sequence.
 *
 * Determinism contract: with persistence off, Cloud never calls in
 * here. With persistence on and the injector disarmed, no RNG is
 * consumed and no result changes — only files are written.
 */
#ifndef NAZAR_PERSIST_CLOUD_PERSIST_H
#define NAZAR_PERSIST_CLOUD_PERSIST_H

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driftlog/drift_log.h"
#include "persist/crash_point.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace nazar::persist {

/** Durability configuration (off by default: dir empty). */
struct PersistConfig
{
    /** State directory (wal.log + snapshot.bin). Empty = off. */
    std::string dir;
    /** WAL appends between snapshots (0 = snapshot only on demand). */
    uint64_t snapshotEvery = 256;
    /** Arm the crash injector at the Nth site hit (0 = disarmed). */
    uint64_t crashAtHit = 0;
    /**
     * WAL durability: kFlush matches the process-kill fault model;
     * kFdatasync/kFsync survive power loss (group commit amortizes
     * the per-sync cost — see Wal::appendBuffered).
     */
    SyncMode sync = SyncMode::kFlush;

    bool enabled() const { return !dir.empty(); }
};

/** Everything recovery reconstructs from snapshot + WAL replay. */
struct RecoveredState
{
    driftlog::DriftLog log;            ///< Pending (unanalyzed) rows.
    std::vector<UploadRecord> uploads; ///< Pending upload buffer.
    std::map<int64_t, DedupWindow> dedup;
    uint64_t dedupHits = 0;
    uint64_t totalIngested = 0;
    int64_t nextVersionId = 1;
    int64_t logicalTime = 0;
    /** Registry blob store contents, key -> bytes. */
    std::vector<std::pair<std::string, std::string>> blobs;
    std::optional<std::string> cleanPatchText;
    int64_t cleanPatchTime = 0;
    uint64_t lastWalSeq = 0;
    bool snapshotLoaded = false;
    uint64_t replayedRecords = 0;
    uint64_t truncatedBytes = 0; ///< Torn WAL tail dropped on open.
};

/** The blobs one published version wrote to the registry store. */
struct VersionBlobs
{
    int64_t id = 0;
    std::string meta;
    std::string patch;
};

/**
 * Read-only recovery: load the snapshot (when valid) and replay the
 * WAL. Used by `nazar_ops recover` and by tests; Cloud recovery goes
 * through CloudPersistence, which additionally opens the WAL for
 * append (truncating any torn tail).
 *
 * @param dedup_window Dedup window size to replay ingests with; must
 *                     match the CloudConfig the WAL was written under.
 */
RecoveredState recoverDir(const std::filesystem::path &dir,
                          size_t dedup_window = 4096);

/** Per-state-directory durability engine, owned by sim::Cloud. */
class CloudPersistence
{
  public:
    /**
     * Open (creating if needed) the state directory, recover, and
     * position the WAL for append. @p dedup_window must match the
     * owning cloud's config so replayed ingests dedup identically.
     */
    CloudPersistence(const PersistConfig &config, size_t dedup_window);

    /** State recovered at open; Cloud consumes it in its constructor. */
    RecoveredState &recovered() { return recovered_; }

    /** Free the recovered buffers once the owner has adopted them. */
    void dropRecovered() { recovered_ = RecoveredState{}; }

    /**
     * Log one ingest attempt (WAL-first: call before applying).
     * @p device is -1 for the non-deduped ingest() path; @p features
     * is null when the entry carries no upload.
     */
    void logIngest(int64_t device, uint64_t seq,
                   const driftlog::DriftLogEntry &entry,
                   const std::vector<double> *features,
                   const rca::AttributeSet *context, bool drift_flag);

    /**
     * Encode one ingest attempt as a kIngest payload (the bytes
     * logIngest appends). Exposed so callers can pre-encode a batch
     * for logIngestBatch.
     */
    static std::string encodeIngest(int64_t device, uint64_t seq,
                                    const driftlog::DriftLogEntry &entry,
                                    const std::vector<double> *features,
                                    const rca::AttributeSet *context,
                                    bool drift_flag);

    /**
     * Group commit: append every payload (from encodeIngest) with ONE
     * sync for the whole batch. A crash mid-batch leaves at most a
     * torn tail; records before the tear replay, the rest were never
     * acknowledged. Callers must serialize against other WAL writers
     * (the ingest server's committer thread is the sole writer).
     */
    void logIngestBatch(const std::vector<std::string> &payloads);

    /** Log one committed cycle (call after publishing to the store). */
    void logCycleCommit(int64_t logical_time, int64_t next_version_id,
                        const std::vector<VersionBlobs> &versions,
                        const std::optional<std::string> &clean_patch_text,
                        int64_t clean_patch_time);

    /** Log one baseline flush (buffers cleared without analysis). */
    void logFlush();

    /** True when enough appends accumulated to warrant a snapshot. */
    bool snapshotDue() const;

    /**
     * Write a snapshot (rename-on-commit) and truncate the WAL.
     * data.lastWalSeq is filled in from the WAL's last appended seq.
     */
    void writeSnapshot(SnapshotData data);

    CrashInjector &injector() { return injector_; }
    const PersistConfig &config() const { return config_; }
    const Wal &wal() const { return *wal_; }

    /** Appends since the last snapshot (exposed for tests). */
    uint64_t appendsSinceSnapshot() const { return appendsSince_; }

  private:
    uint64_t append(WalRecordType type, const std::string &payload);

    PersistConfig config_;
    CrashInjector injector_;
    std::unique_ptr<Wal> wal_;
    RecoveredState recovered_;
    uint64_t appendsSince_ = 0;
};

} // namespace nazar::persist

#endif // NAZAR_PERSIST_CLOUD_PERSIST_H
