/**
 * @file
 * Crash-point injection for the durability layer.
 *
 * The WAL and snapshot writers call into a CrashInjector at every
 * durable-write boundary ("site"). The injector counts hits in the
 * order the process reaches them; arming it at hit N makes the Nth
 * site throw CrashInjected after leaving realistic on-disk wreckage
 * (a torn record, an orphaned snapshot.tmp, a renamed-but-untruncated
 * WAL). Tests sweep N over every hit of a scenario, reopen the state
 * directory, and assert recovery matches a never-crashed oracle.
 *
 * Determinism contract (mirrors net::FaultConfig):
 *  - A disarmed injector (crashAtHit == 0) only counts; it draws no
 *    randomness and changes no behaviour, so persisted runs are
 *    bit-identical with or without the counting.
 *  - Sites are hit in a fixed order for a fixed operation sequence,
 *    so (scenario, hit index) fully reproduces a crash. "Seeded"
 *    injection is just a seed-derived hit index — no RNG stream is
 *    consumed inside the durability layer itself.
 */
#ifndef NAZAR_PERSIST_CRASH_POINT_H
#define NAZAR_PERSIST_CRASH_POINT_H

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace nazar::persist {

/** Thrown at an armed crash site; the "process death" of the cloud. */
class CrashInjected : public std::runtime_error
{
  public:
    CrashInjected(std::string site, uint64_t hit)
        : std::runtime_error("injected crash at site '" + site +
                             "' (hit " + std::to_string(hit) + ")"),
          site_(std::move(site)), hit_(hit)
    {}

    /** The site that fired, e.g. "wal.append.partial". */
    const std::string &site() const { return site_; }

    /** 1-based global hit index at which the crash fired. */
    uint64_t hit() const { return hit_; }

  private:
    std::string site_;
    uint64_t hit_;
};

/** Counted crash-site registry; one per persistence instance. */
class CrashInjector
{
  public:
    CrashInjector() = default;

    /** Arm the injector: the @p hit-th site reached fires (0 = never). */
    void
    armAtHit(uint64_t hit)
    {
        std::lock_guard<std::mutex> lk(mu_);
        armed_ = hit;
    }

    /**
     * Register one site hit. Returns true when this hit is the armed
     * one — the caller then performs its site-specific partial write
     * and throws CrashInjected (or calls check(), which throws
     * directly for sites with no partial-write behaviour).
     */
    bool
    fires(const char *site)
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++hits_;
        sites_.emplace_back(site);
        return armed_ != 0 && hits_ == armed_;
    }

    /** fires() + throw for sites where the crash leaves no torn state. */
    void
    check(const char *site)
    {
        if (fires(site))
            throw CrashInjected(site, hitCount());
    }

    /** Total sites hit so far (sweep bound for exhaustive tests). */
    uint64_t
    hitCount() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return hits_;
    }

    /** The sequence of sites hit, in order. */
    std::vector<std::string>
    siteLog() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return sites_;
    }

    /**
     * Seed-derived hit index in [1, total_hits] — the "random but
     * seeded" crash point the CI smoke uses. Pure arithmetic
     * (splitmix-style mix), no RNG stream.
     */
    static uint64_t
    seededHit(uint64_t seed, uint64_t total_hits)
    {
        uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return total_hits == 0 ? 0 : 1 + z % total_hits;
    }

  private:
    mutable std::mutex mu_;
    uint64_t hits_ = 0;
    uint64_t armed_ = 0;
    std::vector<std::string> sites_;
};

} // namespace nazar::persist

#endif // NAZAR_PERSIST_CRASH_POINT_H
