#include "persist/cloud_persist.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "driftlog/csv.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::persist {

namespace fs = std::filesystem;

namespace {

constexpr uint8_t kFlagHasUpload = 1;
constexpr uint8_t kFlagFromDevice = 2;

std::string
blobKey(int64_t id, const char *kind)
{
    return "versions/" + std::to_string(id) + "/" + kind;
}

/** Replay one ingest attempt with the same dedup semantics as Cloud. */
void
replayIngest(RecoveredState &st, Reader &r, size_t dedup_window)
{
    uint8_t flags = r.getU8();
    int64_t device = r.getI64();
    uint64_t seq = r.getU64();
    driftlog::DriftLogEntry entry = getEntry(r);
    std::optional<UploadRecord> upload;
    if (flags & kFlagHasUpload)
        upload = getUpload(r);

    if (flags & kFlagFromDevice) {
        DedupWindow &window = st.dedup[device];
        auto it = std::lower_bound(window.seen.begin(),
                                   window.seen.end(), seq);
        if (seq < window.floor ||
            (it != window.seen.end() && *it == seq)) {
            ++st.dedupHits;
            return;
        }
        window.seen.insert(it, seq);
        while (window.seen.size() > dedup_window) {
            window.floor = window.seen.front() + 1;
            window.seen.erase(window.seen.begin());
        }
    }
    st.log.add(entry);
    ++st.totalIngested;
    if (upload.has_value())
        st.uploads.push_back(std::move(*upload));
}

void
replayCycleCommit(RecoveredState &st, Reader &r)
{
    st.logicalTime = r.getI64();
    st.nextVersionId = r.getI64();
    if (r.getBool()) {
        st.cleanPatchText = r.getString();
        st.cleanPatchTime = r.getI64();
    }
    uint32_t versions = r.getU32();
    for (uint32_t i = 0; i < versions; ++i) {
        int64_t id = r.getI64();
        st.blobs.emplace_back(blobKey(id, "meta"), r.getString());
        st.blobs.emplace_back(blobKey(id, "patch"), r.getString());
    }
    // The committed cycle archived everything it claimed.
    st.log.clear();
    st.uploads.clear();
}

void
applyWalRecord(RecoveredState &st, const WalRecord &rec,
               size_t dedup_window)
{
    Reader r(rec.payload);
    switch (rec.type) {
      case WalRecordType::kIngest:
        replayIngest(st, r, dedup_window);
        break;
      case WalRecordType::kCycleCommit:
        replayCycleCommit(st, r);
        break;
      case WalRecordType::kFlush:
        st.log.clear();
        st.uploads.clear();
        break;
    }
}

void
applySnapshot(RecoveredState &st, SnapshotData &&snap)
{
    st.lastWalSeq = snap.lastWalSeq;
    st.logicalTime = snap.logicalTime;
    st.nextVersionId = snap.nextVersionId;
    st.totalIngested = snap.totalIngested;
    st.dedupHits = snap.dedupHits;
    std::istringstream csv(snap.driftLogCsv);
    st.log = driftlog::DriftLog::fromTable(
        driftlog::readCsv(st.log.table().schema(), csv));
    st.uploads = std::move(snap.uploads);
    st.dedup = std::move(snap.dedup);
    st.blobs = std::move(snap.blobs);
    st.cleanPatchText = std::move(snap.cleanPatchText);
    st.cleanPatchTime = snap.cleanPatchTime;
}

} // namespace

RecoveredState
recoverDir(const fs::path &dir, size_t dedup_window)
{
    RecoveredState st;
    auto snap = loadSnapshotFile(dir / "snapshot.bin");
    if (snap.has_value()) {
        applySnapshot(st, std::move(*snap));
        st.snapshotLoaded = true;
    }
    WalScan scan = Wal::scan(dir / "wal.log");
    NAZAR_CHECK(!scan.unreadable,
                "recover: " + (dir / "wal.log").string() +
                    " exists but cannot be read");
    st.truncatedBytes = scan.truncatedBytes;
    for (const auto &rec : scan.records) {
        if (rec.seq <= st.lastWalSeq)
            continue; // already inside the snapshot
        applyWalRecord(st, rec, dedup_window);
        st.lastWalSeq = rec.seq;
        ++st.replayedRecords;
    }
    return st;
}

CloudPersistence::CloudPersistence(const PersistConfig &config,
                                   size_t dedup_window)
    : config_(config)
{
    NAZAR_SPAN("persist.recover");
    NAZAR_CHECK(config_.enabled(),
                "CloudPersistence requires a state directory");
    fs::create_directories(config_.dir);
    injector_.armAtHit(config_.crashAtHit);

    fs::path dir(config_.dir);
    auto snap = loadSnapshotFile(dir / "snapshot.bin");
    if (snap.has_value()) {
        applySnapshot(recovered_, std::move(*snap));
        recovered_.snapshotLoaded = true;
        obs::Registry::global()
            .counter("persist.recover.snapshot_loads")
            .add(1);
    }
    // A crash during the tmp phase leaves an orphan; it was never
    // committed, so it is simply discarded.
    std::error_code ec;
    fs::remove(dir / "snapshot.tmp", ec);

    wal_ = std::make_unique<Wal>(dir / "wal.log", &injector_,
                                 config_.sync);
    wal_->bumpSeqPast(recovered_.lastWalSeq);
    recovered_.truncatedBytes = wal_->truncatedBytes();
    for (const auto &rec : wal_->records()) {
        if (rec.seq <= recovered_.lastWalSeq)
            continue;
        applyWalRecord(recovered_, rec, dedup_window);
        recovered_.lastWalSeq = rec.seq;
        ++recovered_.replayedRecords;
    }
    wal_->dropRecords();
    obs::Registry::global()
        .counter("persist.recover.replayed_records")
        .add(recovered_.replayedRecords);
}

uint64_t
CloudPersistence::append(WalRecordType type, const std::string &payload)
{
    uint64_t seq = wal_->append(type, payload);
    ++appendsSince_;
    return seq;
}

std::string
CloudPersistence::encodeIngest(int64_t device, uint64_t seq,
                               const driftlog::DriftLogEntry &entry,
                               const std::vector<double> *features,
                               const rca::AttributeSet *context,
                               bool drift_flag)
{
    Writer w;
    uint8_t flags = 0;
    if (features != nullptr)
        flags |= kFlagHasUpload;
    if (device >= 0)
        flags |= kFlagFromDevice;
    w.putU8(flags);
    w.putI64(device);
    w.putU64(seq);
    putEntry(w, entry);
    if (features != nullptr) {
        w.putU64(features->size());
        for (double f : *features)
            w.putF64(f);
        putAttributeSet(w, *context);
        w.putBool(drift_flag);
    }
    return w.bytes();
}

void
CloudPersistence::logIngest(int64_t device, uint64_t seq,
                            const driftlog::DriftLogEntry &entry,
                            const std::vector<double> *features,
                            const rca::AttributeSet *context,
                            bool drift_flag)
{
    append(WalRecordType::kIngest,
           encodeIngest(device, seq, entry, features, context,
                        drift_flag));
}

void
CloudPersistence::logIngestBatch(const std::vector<std::string> &payloads)
{
    if (payloads.empty())
        return;
    for (const auto &payload : payloads)
        wal_->appendBuffered(WalRecordType::kIngest, payload);
    wal_->sync();
    appendsSince_ += payloads.size();
    obs::Registry::global()
        .counter("persist.wal.group_commits")
        .add(1);
}

void
CloudPersistence::logCycleCommit(
    int64_t logical_time, int64_t next_version_id,
    const std::vector<VersionBlobs> &versions,
    const std::optional<std::string> &clean_patch_text,
    int64_t clean_patch_time)
{
    Writer w;
    w.putI64(logical_time);
    w.putI64(next_version_id);
    w.putBool(clean_patch_text.has_value());
    if (clean_patch_text.has_value()) {
        w.putString(*clean_patch_text);
        w.putI64(clean_patch_time);
    }
    w.putU32(static_cast<uint32_t>(versions.size()));
    for (const auto &v : versions) {
        w.putI64(v.id);
        w.putString(v.meta);
        w.putString(v.patch);
    }
    append(WalRecordType::kCycleCommit, w.bytes());
}

void
CloudPersistence::logFlush()
{
    append(WalRecordType::kFlush, std::string());
}

bool
CloudPersistence::snapshotDue() const
{
    return config_.snapshotEvery > 0 &&
           appendsSince_ >= config_.snapshotEvery;
}

void
CloudPersistence::writeSnapshot(SnapshotData data)
{
    NAZAR_SPAN("persist.snapshot");
    data.lastWalSeq = wal_->lastSeq();
    fs::path dir(config_.dir);
    writeSnapshotFile(dir / "snapshot.tmp", dir / "snapshot.bin", data,
                      injector_);
    wal_->truncateAll();
    appendsSince_ = 0;
}

} // namespace nazar::persist
