#include "persist/cloud_persist.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "driftlog/csv.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::persist {

namespace fs = std::filesystem;

namespace {

constexpr uint8_t kFlagHasUpload = 1;
constexpr uint8_t kFlagFromDevice = 2;

std::string
blobKey(int64_t id, const char *kind)
{
    return "versions/" + std::to_string(id) + "/" + kind;
}

/** Replay one ingest attempt with the same dedup semantics as Cloud. */
void
replayIngest(RecoveredState &st, Reader &r, size_t dedup_window)
{
    uint8_t flags = r.getU8();
    int64_t device = r.getI64();
    uint64_t seq = r.getU64();
    driftlog::DriftLogEntry entry = getEntry(r);
    std::optional<UploadRecord> upload;
    if (flags & kFlagHasUpload)
        upload = getUpload(r);

    if (flags & kFlagFromDevice) {
        DedupWindow &window = st.dedup[device];
        auto it = std::lower_bound(window.seen.begin(),
                                   window.seen.end(), seq);
        if (seq < window.floor ||
            (it != window.seen.end() && *it == seq)) {
            ++st.dedupHits;
            return;
        }
        window.seen.insert(it, seq);
        while (window.seen.size() > dedup_window) {
            window.floor = window.seen.front() + 1;
            window.seen.erase(window.seen.begin());
        }
    }
    st.log.add(entry);
    ++st.totalIngested;
    if (upload.has_value())
        st.uploads.push_back(std::move(*upload));
}

void
replayCycleCommit(RecoveredState &st, Reader &r)
{
    st.logicalTime = r.getI64();
    st.nextVersionId = r.getI64();
    if (r.getBool()) {
        st.cleanPatchText = r.getString();
        st.cleanPatchTime = r.getI64();
    }
    uint32_t versions = r.getU32();
    for (uint32_t i = 0; i < versions; ++i) {
        int64_t id = r.getI64();
        st.blobs.emplace_back(blobKey(id, "meta"), r.getString());
        st.blobs.emplace_back(blobKey(id, "patch"), r.getString());
    }
    // The committed cycle archived everything it claimed.
    st.log.clear();
    st.uploads.clear();
}

/** Version id of a "versions/<id>/<kind>" blob key (-1 otherwise). */
int64_t
blobKeyVersion(const std::string &key)
{
    constexpr char kPrefix[] = "versions/";
    constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
    if (key.compare(0, kPrefixLen, kPrefix) != 0)
        return -1;
    size_t slash = key.find('/', kPrefixLen);
    if (slash == std::string::npos || slash == kPrefixLen)
        return -1;
    int64_t id = 0;
    for (size_t i = kPrefixLen; i < slash; ++i) {
        if (key[i] < '0' || key[i] > '9')
            return -1;
        id = id * 10 + (key[i] - '0');
    }
    return id;
}

/** Replay one registry GC: drop blobs below the version floor. */
void
replayRegistryGc(RecoveredState &st, Reader &r)
{
    int64_t min_id = r.getI64();
    std::erase_if(st.blobs, [min_id](const auto &kv) {
        int64_t id = blobKeyVersion(kv.first);
        return id >= 0 && id < min_id;
    });
}

void
applyWalRecord(RecoveredState &st, const WalRecord &rec,
               size_t dedup_window)
{
    Reader r(rec.payload);
    switch (rec.type) {
      case WalRecordType::kIngest:
        replayIngest(st, r, dedup_window);
        break;
      case WalRecordType::kCycleCommit:
        replayCycleCommit(st, r);
        break;
      case WalRecordType::kFlush:
        st.log.clear();
        st.uploads.clear();
        break;
      case WalRecordType::kRegistryGc:
        replayRegistryGc(st, r);
        break;
    }
}

void
applySnapshot(RecoveredState &st, SnapshotData &&snap)
{
    st.lastWalSeq = snap.lastWalSeq;
    st.logicalTime = snap.logicalTime;
    st.nextVersionId = snap.nextVersionId;
    st.totalIngested = snap.totalIngested;
    st.dedupHits = snap.dedupHits;
    std::istringstream csv(snap.driftLogCsv);
    st.log = driftlog::DriftLog::fromTable(
        driftlog::readCsv(st.log.table().schema(), csv));
    st.uploads = std::move(snap.uploads);
    st.dedup = std::move(snap.dedup);
    st.blobs = std::move(snap.blobs);
    st.cleanPatchText = std::move(snap.cleanPatchText);
    st.cleanPatchTime = snap.cleanPatchTime;
}

/** All valid chain files in @p dir, keyed by id (invalid = absent). */
std::map<uint64_t, ChainFile>
collectChainFiles(const fs::path &dir)
{
    std::map<uint64_t, ChainFile> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        auto parsed = parseChainFileName(entry.path().filename().string());
        if (!parsed.has_value())
            continue;
        auto loaded = loadChainFile(entry.path());
        if (!loaded.has_value())
            continue; // torn or corrupt: treated as absent
        if (loaded->header.id != parsed->first ||
            loaded->header.kind != parsed->second)
            continue; // header disagrees with the filename
        files.emplace(loaded->header.id, std::move(*loaded));
    }
    return files;
}

/** What the snapshot-chain loader tells CloudPersistence. */
struct ChainRecovery
{
    bool loaded = false; ///< A chain (or legacy snapshot) was applied.
    uint64_t headId = 0;
    uint32_t headCrc = 0;
    uint64_t headLastWalSeq = 0;
    uint64_t deltasSinceFull = 0;
};

/**
 * Load the newest snapshot chain (or the legacy snapshot.bin) into
 * @p st. A delta whose base is missing or CRC-mismatched is a broken
 * chain: recovery REFUSES (NazarError) rather than silently adopting
 * stale state — the base provably existed when the delta committed,
 * so its absence means the directory was damaged outside the
 * protocol.
 */
ChainRecovery
loadSnapshotChain(RecoveredState &st, const fs::path &dir,
                  size_t dedup_window)
{
    ChainRecovery out;
    std::map<uint64_t, ChainFile> files = collectChainFiles(dir);
    if (files.empty()) {
        // Legacy layout (pre-chain): a single snapshot.bin.
        auto snap = loadSnapshotFile(dir / "snapshot.bin");
        if (snap.has_value()) {
            out.headLastWalSeq = snap->lastWalSeq;
            applySnapshot(st, std::move(*snap));
            out.loaded = true;
        }
        return out;
    }

    // Walk head -> base until a full snapshot anchors the chain.
    const ChainFile *cur = &files.rbegin()->second;
    out.headId = cur->header.id;
    out.headCrc = cur->header.payloadCrc;
    out.headLastWalSeq = cur->header.lastWalSeq;
    std::vector<const ChainFile *> chain;
    while (true) {
        chain.push_back(cur);
        if (cur->header.kind == ChainKind::kFull)
            break;
        auto base = files.find(cur->header.baseId);
        NAZAR_CHECK(base != files.end(),
                    "recover: snapshot chain broken — " +
                        chainFileName(cur->header.id, cur->header.kind) +
                        " needs missing/corrupt base id " +
                        std::to_string(cur->header.baseId));
        NAZAR_CHECK(base->second.header.payloadCrc == cur->header.baseCrc,
                    "recover: snapshot chain broken — base id " +
                        std::to_string(cur->header.baseId) +
                        " does not match the CRC its delta recorded");
        cur = &base->second;
    }
    out.deltasSinceFull = chain.size() - 1;

    // Apply base-first: full snapshot, then each delta's records.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const ChainFile &file = **it;
        if (file.header.kind == ChainKind::kFull) {
            applySnapshot(st, decodeSnapshot(file.payload));
        } else {
            for (const WalRecord &rec :
                 decodeDeltaRecords(file.payload)) {
                if (rec.seq <= st.lastWalSeq)
                    continue;
                applyWalRecord(st, rec, dedup_window);
                st.lastWalSeq = rec.seq;
            }
        }
        if (file.header.lastWalSeq > st.lastWalSeq)
            st.lastWalSeq = file.header.lastWalSeq;
    }
    out.loaded = true;
    return out;
}

} // namespace

std::string
encodeDeltaRecords(const std::vector<WalRecord> &records)
{
    Writer w;
    w.putU32(static_cast<uint32_t>(records.size()));
    for (const WalRecord &rec : records) {
        w.putU8(static_cast<uint8_t>(rec.type));
        w.putU64(rec.seq);
        w.putString(rec.payload);
    }
    return w.take();
}

std::vector<WalRecord>
decodeDeltaRecords(const std::string &payload)
{
    Reader r(payload);
    uint32_t count = r.getU32();
    std::vector<WalRecord> records;
    uint64_t last_seq = 0;
    for (uint32_t i = 0; i < count; ++i) {
        WalRecord rec;
        uint8_t type = r.getU8();
        NAZAR_CHECK(type >= 1 && type <= 4,
                    "persist: unknown record type in delta snapshot");
        rec.type = static_cast<WalRecordType>(type);
        rec.seq = r.getU64();
        NAZAR_CHECK(rec.seq > last_seq,
                    "persist: non-increasing seq in delta snapshot");
        last_seq = rec.seq;
        rec.payload = r.getString();
        records.push_back(std::move(rec));
    }
    NAZAR_CHECK(r.atEnd(), "persist: trailing bytes in delta snapshot");
    return records;
}

RecoveredState
recoverDir(const fs::path &dir, size_t dedup_window)
{
    RecoveredState st;
    ChainRecovery chain = loadSnapshotChain(st, dir, dedup_window);
    st.snapshotLoaded = chain.loaded;
    WalScan scan = Wal::scan(dir / "wal.log");
    NAZAR_CHECK(!scan.unreadable,
                "recover: " + (dir / "wal.log").string() +
                    " exists but cannot be read");
    st.truncatedBytes = scan.truncatedBytes;
    for (const auto &rec : scan.records) {
        if (rec.seq <= st.lastWalSeq)
            continue; // already inside the snapshot
        applyWalRecord(st, rec, dedup_window);
        st.lastWalSeq = rec.seq;
        ++st.replayedRecords;
    }
    return st;
}

CloudPersistence::CloudPersistence(const PersistConfig &config,
                                   size_t dedup_window)
    : config_(config)
{
    NAZAR_SPAN("persist.recover");
    NAZAR_CHECK(config_.enabled(),
                "CloudPersistence requires a state directory");
    fs::create_directories(config_.dir);
    injector_.armAtHit(config_.crashAtHit);
    env_.arm(config_.fault);

    fs::path dir(config_.dir);
    ChainRecovery chain =
        loadSnapshotChain(recovered_, dir, dedup_window);
    if (chain.loaded) {
        recovered_.snapshotLoaded = true;
        obs::Registry::global()
            .counter("persist.recover.snapshot_loads")
            .add(1);
    }
    chainHeadId_ = chain.headId;
    chainHeadCrc_ = chain.headCrc;
    chainLastWalSeq_ = chain.headLastWalSeq;
    deltasSinceFull_ = chain.deltasSinceFull;

    // A crash during a tmp phase leaves orphans (snapshot.tmp or
    // snap-*.tmp); they were never committed, so discard them.
    std::error_code ec;
    std::vector<fs::path> orphans;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".tmp")
            orphans.push_back(entry.path());
    }
    for (const auto &orphan : orphans)
        fs::remove(orphan, ec);

    wal_ = std::make_unique<Wal>(dir / "wal.log", &injector_,
                                 config_.sync, &env_);
    wal_->bumpSeqPast(recovered_.lastWalSeq);
    recovered_.truncatedBytes = wal_->truncatedBytes();
    for (const auto &rec : wal_->records()) {
        if (rec.seq <= recovered_.lastWalSeq)
            continue;
        applyWalRecord(recovered_, rec, dedup_window);
        recovered_.lastWalSeq = rec.seq;
        ++recovered_.replayedRecords;
    }
    wal_->dropRecords();
    obs::Registry::global()
        .counter("persist.recover.replayed_records")
        .add(recovered_.replayedRecords);
}

uint64_t
CloudPersistence::append(WalRecordType type, const std::string &payload)
{
    uint64_t seq = wal_->append(type, payload);
    ++appendsSince_;
    return seq;
}

std::string
CloudPersistence::encodeIngest(int64_t device, uint64_t seq,
                               const driftlog::DriftLogEntry &entry,
                               const std::vector<double> *features,
                               const rca::AttributeSet *context,
                               bool drift_flag)
{
    Writer w;
    uint8_t flags = 0;
    if (features != nullptr)
        flags |= kFlagHasUpload;
    if (device >= 0)
        flags |= kFlagFromDevice;
    w.putU8(flags);
    w.putI64(device);
    w.putU64(seq);
    putEntry(w, entry);
    if (features != nullptr) {
        w.putU64(features->size());
        for (double f : *features)
            w.putF64(f);
        putAttributeSet(w, *context);
        w.putBool(drift_flag);
    }
    return w.bytes();
}

void
CloudPersistence::logIngest(int64_t device, uint64_t seq,
                            const driftlog::DriftLogEntry &entry,
                            const std::vector<double> *features,
                            const rca::AttributeSet *context,
                            bool drift_flag)
{
    append(WalRecordType::kIngest,
           encodeIngest(device, seq, entry, features, context,
                        drift_flag));
}

void
CloudPersistence::logIngestBatch(const std::vector<std::string> &payloads)
{
    if (payloads.empty())
        return;
    for (const auto &payload : payloads)
        wal_->appendBuffered(WalRecordType::kIngest, payload);
    wal_->sync();
    appendsSince_ += payloads.size();
    obs::Registry::global()
        .counter("persist.wal.group_commits")
        .add(1);
}

void
CloudPersistence::logCycleCommit(
    int64_t logical_time, int64_t next_version_id,
    const std::vector<VersionBlobs> &versions,
    const std::optional<std::string> &clean_patch_text,
    int64_t clean_patch_time)
{
    Writer w;
    w.putI64(logical_time);
    w.putI64(next_version_id);
    w.putBool(clean_patch_text.has_value());
    if (clean_patch_text.has_value()) {
        w.putString(*clean_patch_text);
        w.putI64(clean_patch_time);
    }
    w.putU32(static_cast<uint32_t>(versions.size()));
    for (const auto &v : versions) {
        w.putI64(v.id);
        w.putString(v.meta);
        w.putString(v.patch);
    }
    append(WalRecordType::kCycleCommit, w.bytes());
}

void
CloudPersistence::logFlush()
{
    append(WalRecordType::kFlush, std::string());
}

void
CloudPersistence::logRegistryGc(int64_t min_version_id)
{
    Writer w;
    w.putI64(min_version_id);
    append(WalRecordType::kRegistryGc, w.bytes());
}

bool
CloudPersistence::snapshotDue() const
{
    return config_.snapshotEvery > 0 &&
           appendsSince_ >= config_.snapshotEvery;
}

bool
CloudPersistence::nextSnapshotIsFull() const
{
    return chainHeadId_ == 0 || config_.fullEvery <= 1 ||
           deltasSinceFull_ + 1 >= config_.fullEvery;
}

void
CloudPersistence::writeSnapshot(SnapshotData data)
{
    NAZAR_SPAN("persist.snapshot");
    data.lastWalSeq = wal_->lastSeq();
    ChainHeader header;
    header.kind = ChainKind::kFull;
    header.id = chainHeadId_ + 1;
    header.lastWalSeq = data.lastWalSeq;
    chainHeadCrc_ = writeChainFile(fs::path(config_.dir), header,
                                   encodeSnapshot(data), injector_, env_);
    chainHeadId_ = header.id;
    chainLastWalSeq_ = data.lastWalSeq;
    deltasSinceFull_ = 0;
    wal_->truncateAll();
    appendsSince_ = 0;
    gcSupersededChain();
}

void
CloudPersistence::writeDeltaSnapshot()
{
    NAZAR_SPAN("persist.snapshot_delta");
    NAZAR_ASSERT(chainHeadId_ != 0,
                 "delta snapshot without a chain base");
    // Every append path syncs before returning, so the on-disk WAL
    // holds exactly the records since the last truncation. Filter to
    // seqs above the chain head: a crash between a snapshot's rename
    // and its WAL truncation legitimately leaves older records behind.
    WalScan scan = Wal::scan(wal_->path());
    std::vector<WalRecord> records;
    records.reserve(scan.records.size());
    for (auto &rec : scan.records) {
        if (rec.seq > chainLastWalSeq_)
            records.push_back(std::move(rec));
    }
    uint64_t last_seq = wal_->lastSeq();
    ChainHeader header;
    header.kind = ChainKind::kDelta;
    header.id = chainHeadId_ + 1;
    header.baseId = chainHeadId_;
    header.baseCrc = chainHeadCrc_;
    header.lastWalSeq = last_seq;
    chainHeadCrc_ =
        writeChainFile(fs::path(config_.dir), header,
                       encodeDeltaRecords(records), injector_, env_);
    chainHeadId_ = header.id;
    chainLastWalSeq_ = last_seq;
    ++deltasSinceFull_;
    wal_->truncateAll();
    appendsSince_ = 0;
}

void
CloudPersistence::gcSupersededChain()
{
    // Safety invariant: only called right after a FULL snapshot
    // committed, so the recovery chain is exactly {chainHeadId_} and
    // every older chain file (and the legacy snapshot.bin) is
    // superseded. Unlinks are best-effort: a survivor is harmless
    // (recovery picks the newest chain) and must not poison the log.
    fs::path dir(config_.dir);
    std::error_code ec;
    std::vector<fs::path> victims;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        auto parsed =
            parseChainFileName(entry.path().filename().string());
        if (parsed.has_value() && parsed->first < chainHeadId_)
            victims.push_back(entry.path());
    }
    if (fs::exists(dir / "snapshot.bin", ec))
        victims.push_back(dir / "snapshot.bin");
    uint64_t removed = 0;
    for (const auto &victim : victims) {
        if (env_.remove("env.snap.unlink", victim))
            ++removed;
    }
    snapshotGcRemoved_ += removed;
    if (removed > 0)
        obs::Registry::global()
            .counter("persist.snapshot.gc_removed")
            .add(removed);
}

ScrubReport
scrubStateDir(const fs::path &dir)
{
    ScrubReport report;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        report.ok = false;
        report.issues.push_back("not a directory: " + dir.string());
        return report;
    }

    // --- WAL: header, per-record CRC + seq monotonicity -------------
    fs::path wal_path = dir / "wal.log";
    if (fs::exists(wal_path, ec)) {
        WalScan scan = Wal::scan(wal_path);
        if (scan.unreadable) {
            report.ok = false;
            report.issues.push_back("wal.log exists but is unreadable");
        } else if (!scan.validHeader) {
            report.ok = false;
            report.issues.push_back("wal.log has no valid header");
        } else {
            report.walRecords = scan.records.size();
            report.walTornBytes = scan.truncatedBytes;
            if (scan.truncatedBytes > 0)
                report.notes.push_back(
                    "wal.log has a torn tail of " +
                    std::to_string(scan.truncatedBytes) +
                    " bytes (recovery truncates it)");
        }
    } else {
        report.notes.push_back("no wal.log (fresh or empty state dir)");
    }

    // --- chain files: magic, CRC, filename/header agreement --------
    std::map<uint64_t, ChainFile> valid;
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        auto parsed = parseChainFileName(name);
        if (!parsed.has_value())
            continue;
        auto loaded = loadChainFile(entry.path());
        if (!loaded.has_value()) {
            report.ok = false;
            report.issues.push_back("corrupt chain file: " + name);
            continue;
        }
        if (loaded->header.id != parsed->first ||
            loaded->header.kind != parsed->second) {
            report.ok = false;
            report.issues.push_back(
                "chain file header disagrees with filename: " + name);
            continue;
        }
        ++report.chainFiles;
        report.chainBytes += loaded->payload.size();
        names.push_back(name);
        valid.emplace(loaded->header.id, std::move(*loaded));
    }

    // --- recovery chain: head -> full, links pinned by CRC ----------
    if (!valid.empty()) {
        const ChainFile *cur = &valid.rbegin()->second;
        uint64_t chain_last_seq = cur->header.lastWalSeq;
        while (true) {
            ++report.chainLength;
            try {
                if (cur->header.kind == ChainKind::kFull)
                    decodeSnapshot(cur->payload);
                else
                    decodeDeltaRecords(cur->payload);
            } catch (const NazarError &e) {
                report.ok = false;
                report.issues.push_back(
                    "chain payload fails to decode (id " +
                    std::to_string(cur->header.id) + "): " + e.what());
            }
            if (cur->header.kind == ChainKind::kFull)
                break;
            auto base = valid.find(cur->header.baseId);
            if (base == valid.end()) {
                report.ok = false;
                report.issues.push_back(
                    "chain link broken: id " +
                    std::to_string(cur->header.id) +
                    " needs missing/corrupt base id " +
                    std::to_string(cur->header.baseId));
                break;
            }
            if (base->second.header.payloadCrc != cur->header.baseCrc) {
                report.ok = false;
                report.issues.push_back(
                    "chain link CRC mismatch: id " +
                    std::to_string(cur->header.id) + " expects base " +
                    std::to_string(cur->header.baseId) +
                    " with a different payload CRC");
                break;
            }
            cur = &base->second;
        }
        if (report.chainLength < valid.size())
            report.notes.push_back(
                std::to_string(valid.size() - report.chainLength) +
                " superseded chain file(s) awaiting GC");
        if (report.walRecords > 0 && report.ok) {
            WalScan scan = Wal::scan(wal_path);
            uint64_t stale = 0;
            for (const auto &rec : scan.records)
                if (rec.seq <= chain_last_seq)
                    ++stale;
            if (stale > 0)
                report.notes.push_back(
                    std::to_string(stale) +
                    " WAL record(s) already inside the snapshot chain "
                    "(crash before truncation; replay skips them)");
        }
    }

    // --- legacy snapshot.bin ----------------------------------------
    if (fs::exists(dir / "snapshot.bin", ec)) {
        auto snap = loadSnapshotFile(dir / "snapshot.bin");
        if (snap.has_value()) {
            report.legacySnapshot = true;
            if (!valid.empty())
                report.notes.push_back(
                    "stale legacy snapshot.bin awaiting GC");
        } else if (valid.empty()) {
            report.ok = false;
            report.issues.push_back(
                "snapshot.bin is corrupt and no chain exists");
        } else {
            report.notes.push_back(
                "unreadable legacy snapshot.bin (not part of the "
                "recovery chain)");
        }
    }
    return report;
}

} // namespace nazar::persist
