/**
 * @file
 * Checksummed, length-prefixed write-ahead log.
 *
 * On-disk layout:
 *
 *     [8-byte magic "NZWAL1\0\0"]
 *     repeated records: [u32 bodyLen][u32 crc32(body)][body]
 *     body = [u8 recordType][u64 seq][payload...]
 *
 * Sequence numbers are strictly increasing across the WAL's lifetime
 * and keep counting across truncations, so a snapshot can record "I
 * contain everything up to seq S" and replay skips records <= S.
 *
 * Opening scans the file front to back; the first short read, CRC
 * mismatch, or non-monotonic seq marks the torn tail left by a crash
 * mid-append, and the file is truncated to the last good record.
 * Everything before the tear is valid by construction (each record is
 * independently checksummed), so a crash can only lose the operation
 * that was being written — which by WAL-first ordering was never
 * applied to memory either.
 */
#ifndef NAZAR_PERSIST_WAL_H
#define NAZAR_PERSIST_WAL_H

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "persist/crash_point.h"
#include "persist/env.h"

namespace nazar::persist {

/** Typed WAL records; the payload format is owned by cloud_persist. */
enum class WalRecordType : uint8_t {
    kIngest = 1,      ///< One drift-log ingest (+ optional upload/dedup).
    kCycleCommit = 2, ///< One completed runCycle: publishes + counters.
    kFlush = 3,       ///< Baseline window flush: buffers cleared.
    kRegistryGc = 4,  ///< Registry eviction of versions below a floor.
};

/** One decoded record, as returned by scan() / replay. */
struct WalRecord
{
    WalRecordType type;
    uint64_t seq = 0;
    std::string payload;
};

/** Result of scanning a WAL file without opening it for append. */
struct WalScan
{
    std::vector<WalRecord> records;
    uint64_t truncatedBytes = 0; ///< Torn-tail bytes dropped (0 = clean).
    bool validHeader = false;
    /**
     * The file exists but could not be read (open failure other than
     * ENOENT, or a read error such as EISDIR/EIO). The scan result is
     * then meaningless and the file must not be overwritten.
     */
    bool unreadable = false;
};

/**
 * How append() makes a record durable.
 *
 * kFlush (the default) only pushes stdio buffers into the page cache —
 * enough for the process-kill fault model the crash injector
 * simulates, but not for power loss. kFdatasync/kFsync add a real
 * fdatasync(2)/fsync(2) per sync() call; group commit (see
 * appendBuffered) amortizes that cost over a batch.
 */
enum class SyncMode : uint8_t {
    kFlush = 0,
    kFdatasync = 1,
    kFsync = 2,
};

/** Parse "flush" / "fdatasync" / "fsync"; throws NazarError otherwise. */
SyncMode syncModeFromString(const std::string &name);

/** Name for a SyncMode (inverse of syncModeFromString). */
const char *syncModeName(SyncMode mode);

/** Append-only WAL file handle. */
class Wal
{
  public:
    /**
     * Open (creating if absent) the WAL at @p path. Scans existing
     * records, truncates any torn tail, and positions for append.
     * Recovered records are available via records() until
     * dropRecords() frees them. An *unreadable* existing file (open
     * or read failure that isn't ENOENT) throws NazarError instead of
     * being clobbered with a fresh header.
     *
     * All file I/O is routed through @p env (sites "env.wal.open",
     * "env.wal.write", "env.wal.sync", "env.wal.truncate",
     * "env.wal.dirsync"); when null the Wal owns a fault-free Env.
     */
    Wal(const std::filesystem::path &path, CrashInjector *injector,
        SyncMode sync = SyncMode::kFlush, Env *env = nullptr);
    ~Wal();

    Wal(const Wal &) = delete;
    Wal &operator=(const Wal &) = delete;

    /**
     * Append one record durably (write + sync) and return its seq.
     * Crash sites: "wal.append.partial" fires after writing a torn
     * prefix of the record (the operation is NOT durable);
     * "wal.append.post" fires after the full record is on disk (the
     * operation IS durable, the in-memory apply was lost).
     */
    uint64_t append(WalRecordType type, const std::string &payload);

    /**
     * Group commit: append one record into the stdio buffer WITHOUT
     * syncing, and return its seq. The record is not durable until
     * the next sync(); a crash in between leaves at most a torn tail,
     * which the open-time scan truncates. Fires "wal.append.partial"
     * exactly like append().
     */
    uint64_t appendBuffered(WalRecordType type, const std::string &payload);

    /**
     * Make every buffered append durable: one flush (plus one
     * fdatasync/fsync when the mode asks for it) for the whole batch.
     * Fires "wal.append.post" once. append() is exactly
     * appendBuffered() + sync(), so per-record callers hit the crash
     * sites in the historical order.
     */
    void sync();

    SyncMode syncMode() const { return sync_; }

    /**
     * Drop all records: truncate the file back to the bare header.
     * The seq counter keeps counting — snapshots rely on seq being
     * unique across the whole history. Crash site:
     * "wal.truncate.post" after the truncation took effect.
     */
    void truncateAll();

    /** Records recovered at open time (seq > any snapshot's cut). */
    const std::vector<WalRecord> &records() const { return records_; }

    /** Free the recovered records once replay has consumed them. */
    void dropRecords() { records_.clear(); records_.shrink_to_fit(); }

    /** Torn-tail bytes truncated at open (0 when the shutdown was clean). */
    uint64_t truncatedBytes() const { return truncatedBytes_; }

    /** Next sequence number that append() would assign. */
    uint64_t nextSeq() const { return nextSeq_; }

    /** Last appended/recovered seq (0 when the log is empty). */
    uint64_t lastSeq() const { return nextSeq_ == 1 ? 0 : nextSeq_ - 1; }

    /**
     * After a snapshot recorded lastWalSeq, seed the counter so new
     * appends continue above it even though the file was truncated.
     */
    void bumpSeqPast(uint64_t last_seq);

    const std::filesystem::path &path() const { return path_; }

    /**
     * True once any I/O through the Env failed (the fsync gate): the
     * log is poisoned, every mutating call throws DiskFault, and the
     * owner must recover from the last durable state by rebuilding.
     */
    bool diskFaulted() const { return env_->faulted(); }

    /** Site of the latched disk fault ("" when healthy). */
    std::string diskFaultSite() const { return env_->faultSite(); }

    Env &env() { return *env_; }

    /** Read-only scan (used by `nazar_ops wal` and recovery). */
    static WalScan scan(const std::filesystem::path &path);

    static constexpr char kMagic[8] = {'N', 'Z', 'W', 'A', 'L', '1', 0, 0};

  private:
    /** Env sync depth for the configured mode (0/1/2). */
    int syncDepth() const;

    /** Parent directory for dirsync ("." for bare filenames). */
    std::filesystem::path parentDir() const;

    std::filesystem::path path_;
    CrashInjector *injector_; ///< Never null; owned by CloudPersistence.
    std::unique_ptr<Env> ownedEnv_; ///< Set when no Env was supplied.
    Env *env_ = nullptr;
    Env::File *file_ = nullptr;
    SyncMode sync_ = SyncMode::kFlush;
    uint64_t nextSeq_ = 1;
    uint64_t truncatedBytes_ = 0;
    std::vector<WalRecord> records_;
};

} // namespace nazar::persist

#endif // NAZAR_PERSIST_WAL_H
