#include "persist/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "obs/metrics.h"
#include "persist/serial.h"

namespace nazar::persist {

namespace fs = std::filesystem;

namespace {

struct SlurpResult
{
    std::string data;
    /** Exists but can't be read — NOT the same as absent. */
    bool unreadable = false;
};

/** Read an entire file into a string ("" when absent). */
SlurpResult
slurp(const fs::path &path)
{
    SlurpResult out;
    errno = 0;
    std::FILE *f = std::fopen(path.string().c_str(), "rb");
    if (!f) {
        // ENOENT means a fresh directory; anything else (EACCES,
        // EIO, ...) means a file we must not pretend is absent.
        out.unreadable = errno != ENOENT;
        return out;
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.data.append(buf, n);
    if (std::ferror(f)) {
        // fopen on a directory succeeds on Linux but fread fails
        // with EISDIR; media errors surface the same way.
        out.unreadable = true;
        out.data.clear();
    }
    std::fclose(f);
    return out;
}

/** Parse @p data; returns the scan plus the byte length of the good prefix. */
std::pair<WalScan, size_t>
parseWal(const std::string &data)
{
    WalScan scan;
    if (data.size() < sizeof(Wal::kMagic) ||
        std::memcmp(data.data(), Wal::kMagic, sizeof(Wal::kMagic)) != 0) {
        scan.truncatedBytes = data.size();
        return {std::move(scan), 0};
    }
    scan.validHeader = true;
    size_t pos = sizeof(Wal::kMagic);
    size_t good = pos;
    uint64_t last_seq = 0;
    while (data.size() - pos >= 8) {
        Reader head(data.data() + pos, 8);
        uint32_t len = head.getU32();
        uint32_t crc = head.getU32();
        if (data.size() - pos - 8 < len)
            break; // short body: torn tail
        const char *body = data.data() + pos + 8;
        if (crc32(body, len) != crc)
            break; // bit rot or torn rewrite
        if (len < 9)
            break; // body must hold at least type + seq
        Reader r(body, len);
        WalRecord rec;
        rec.type = static_cast<WalRecordType>(r.getU8());
        rec.seq = r.getU64();
        if (rec.type != WalRecordType::kIngest &&
            rec.type != WalRecordType::kCycleCommit &&
            rec.type != WalRecordType::kFlush &&
            rec.type != WalRecordType::kRegistryGc)
            break; // unknown type: treat as corruption
        if (rec.seq <= last_seq)
            break; // seqs are strictly increasing
        rec.payload.assign(body + 9, len - 9);
        last_seq = rec.seq;
        scan.records.push_back(std::move(rec));
        pos += 8 + len;
        good = pos;
    }
    scan.truncatedBytes = data.size() - good;
    return {std::move(scan), good};
}

} // namespace

SyncMode
syncModeFromString(const std::string &name)
{
    if (name == "flush")
        return SyncMode::kFlush;
    if (name == "fdatasync")
        return SyncMode::kFdatasync;
    if (name == "fsync")
        return SyncMode::kFsync;
    throw NazarError("unknown sync mode '" + name +
                     "' (expected flush|fdatasync|fsync)");
}

const char *
syncModeName(SyncMode mode)
{
    switch (mode) {
    case SyncMode::kFlush:
        return "flush";
    case SyncMode::kFdatasync:
        return "fdatasync";
    case SyncMode::kFsync:
        return "fsync";
    }
    return "?";
}

WalScan
Wal::scan(const fs::path &path)
{
    SlurpResult slurped = slurp(path);
    WalScan scan = parseWal(slurped.data).first;
    scan.unreadable = slurped.unreadable;
    return scan;
}

Wal::Wal(const fs::path &path, CrashInjector *injector, SyncMode sync,
         Env *env)
    : path_(path), injector_(injector), sync_(sync)
{
    NAZAR_CHECK(injector_ != nullptr, "Wal: null crash injector");
    if (env == nullptr) {
        ownedEnv_ = std::make_unique<Env>();
        env = ownedEnv_.get();
    }
    env_ = env;
    SlurpResult slurped = slurp(path_);
    NAZAR_CHECK(!slurped.unreadable,
                "Wal: " + path_.string() +
                    " exists but cannot be read; refusing to "
                    "overwrite it");
    std::string data = std::move(slurped.data);
    auto [scan, good] = parseWal(data);
    truncatedBytes_ = scan.truncatedBytes;
    records_ = std::move(scan.records);
    if (!records_.empty())
        nextSeq_ = records_.back().seq + 1;
    if (!scan.validHeader) {
        // Absent or unrecognizable file: start fresh with a header,
        // made durable (file + directory entry) before any record
        // relies on it.
        file_ = env_->open("env.wal.open", path_, "wb");
        env_->write("env.wal.write", file_, kMagic, sizeof(kMagic));
        env_->sync("env.wal.sync", file_, syncDepth());
        env_->syncDir("env.wal.dirsync", parentDir());
        return;
    }
    if (good < data.size())
        env_->resize("env.wal.truncate", path_, good); // drop torn tail
    file_ = env_->open("env.wal.open", path_, "ab");
    if (truncatedBytes_ > 0)
        obs::Registry::global()
            .counter("persist.wal.torn_bytes")
            .add(truncatedBytes_);
}

Wal::~Wal()
{
    if (file_ != nullptr)
        env_->close(file_);
}

int
Wal::syncDepth() const
{
    switch (sync_) {
    case SyncMode::kFlush:
        return 0;
    case SyncMode::kFdatasync:
        return 1;
    case SyncMode::kFsync:
        return 2;
    }
    return 0;
}

fs::path
Wal::parentDir() const
{
    fs::path parent = path_.parent_path();
    return parent.empty() ? fs::path(".") : parent;
}

uint64_t
Wal::append(WalRecordType type, const std::string &payload)
{
    uint64_t seq = appendBuffered(type, payload);
    sync();
    return seq;
}

uint64_t
Wal::appendBuffered(WalRecordType type, const std::string &payload)
{
    Writer body;
    body.putU8(static_cast<uint8_t>(type));
    body.putU64(nextSeq_);
    body.putBytes(payload.data(), payload.size());

    Writer frame;
    frame.putU32(static_cast<uint32_t>(body.size()));
    frame.putU32(crc32(body.bytes().data(), body.size()));
    frame.putBytes(body.bytes().data(), body.size());
    const std::string &bytes = frame.bytes();

    if (injector_->fires("wal.append.partial")) {
        // Torn write: the frame header plus roughly half the body
        // reaches disk before the "process" dies. The record fails
        // its CRC on reopen, so the operation was never durable.
        size_t torn = 8 + (body.size() + 1) / 2;
        std::fwrite(bytes.data(), 1, torn, file_->fp);
        std::fflush(file_->fp);
        throw CrashInjected("wal.append.partial", injector_->hitCount());
    }
    env_->write("env.wal.write", file_, bytes.data(), bytes.size());
    uint64_t seq = nextSeq_++;
    obs::Registry::global().counter("persist.wal.appends").add(1);
    return seq;
}

void
Wal::sync()
{
    env_->sync("env.wal.sync", file_, syncDepth());
    obs::Registry::global().counter("persist.wal.syncs").add(1);
    injector_->check("wal.append.post");
}

void
Wal::truncateAll()
{
    env_->close(file_);
    file_ = nullptr;
    env_->resize("env.wal.truncate", path_, sizeof(kMagic));
    file_ = env_->open("env.wal.open", path_, "ab");
    env_->syncDir("env.wal.dirsync", parentDir());
    obs::Registry::global().counter("persist.wal.truncations").add(1);
    injector_->check("wal.truncate.post");
}

void
Wal::bumpSeqPast(uint64_t last_seq)
{
    if (nextSeq_ <= last_seq)
        nextSeq_ = last_seq + 1;
}

} // namespace nazar::persist
