file(REMOVE_RECURSE
  "CMakeFiles/nazar_ops.dir/nazar_ops.cc.o"
  "CMakeFiles/nazar_ops.dir/nazar_ops.cc.o.d"
  "nazar_ops"
  "nazar_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
