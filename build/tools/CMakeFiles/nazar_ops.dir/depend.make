# Empty dependencies file for nazar_ops.
# This may be replaced when dependencies are built.
