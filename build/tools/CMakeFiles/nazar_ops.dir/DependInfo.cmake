
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/nazar_ops.cc" "tools/CMakeFiles/nazar_ops.dir/nazar_ops.cc.o" "gcc" "tools/CMakeFiles/nazar_ops.dir/nazar_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rca/CMakeFiles/nazar_rca.dir/DependInfo.cmake"
  "/root/repo/build/src/driftlog/CMakeFiles/nazar_driftlog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
