file(REMOVE_RECURSE
  "libnazar_nn.a"
)
