# Empty compiler generated dependencies file for nazar_nn.
# This may be replaced when dependencies are built.
