file(REMOVE_RECURSE
  "CMakeFiles/nazar_nn.dir/activation.cc.o"
  "CMakeFiles/nazar_nn.dir/activation.cc.o.d"
  "CMakeFiles/nazar_nn.dir/batchnorm.cc.o"
  "CMakeFiles/nazar_nn.dir/batchnorm.cc.o.d"
  "CMakeFiles/nazar_nn.dir/bn_patch.cc.o"
  "CMakeFiles/nazar_nn.dir/bn_patch.cc.o.d"
  "CMakeFiles/nazar_nn.dir/classifier.cc.o"
  "CMakeFiles/nazar_nn.dir/classifier.cc.o.d"
  "CMakeFiles/nazar_nn.dir/linear.cc.o"
  "CMakeFiles/nazar_nn.dir/linear.cc.o.d"
  "CMakeFiles/nazar_nn.dir/loss.cc.o"
  "CMakeFiles/nazar_nn.dir/loss.cc.o.d"
  "CMakeFiles/nazar_nn.dir/matrix.cc.o"
  "CMakeFiles/nazar_nn.dir/matrix.cc.o.d"
  "CMakeFiles/nazar_nn.dir/optimizer.cc.o"
  "CMakeFiles/nazar_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/nazar_nn.dir/sequential.cc.o"
  "CMakeFiles/nazar_nn.dir/sequential.cc.o.d"
  "libnazar_nn.a"
  "libnazar_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
