
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/nazar_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/nn/CMakeFiles/nazar_nn.dir/batchnorm.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/batchnorm.cc.o.d"
  "/root/repo/src/nn/bn_patch.cc" "src/nn/CMakeFiles/nazar_nn.dir/bn_patch.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/bn_patch.cc.o.d"
  "/root/repo/src/nn/classifier.cc" "src/nn/CMakeFiles/nazar_nn.dir/classifier.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/classifier.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/nazar_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/nazar_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/nazar_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/nazar_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/nn/CMakeFiles/nazar_nn.dir/sequential.cc.o" "gcc" "src/nn/CMakeFiles/nazar_nn.dir/sequential.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
