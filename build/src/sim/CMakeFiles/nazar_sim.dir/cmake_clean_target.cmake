file(REMOVE_RECURSE
  "libnazar_sim.a"
)
