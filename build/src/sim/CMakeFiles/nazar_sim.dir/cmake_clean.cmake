file(REMOVE_RECURSE
  "CMakeFiles/nazar_sim.dir/cloud.cc.o"
  "CMakeFiles/nazar_sim.dir/cloud.cc.o.d"
  "CMakeFiles/nazar_sim.dir/device.cc.o"
  "CMakeFiles/nazar_sim.dir/device.cc.o.d"
  "CMakeFiles/nazar_sim.dir/runner.cc.o"
  "CMakeFiles/nazar_sim.dir/runner.cc.o.d"
  "libnazar_sim.a"
  "libnazar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
