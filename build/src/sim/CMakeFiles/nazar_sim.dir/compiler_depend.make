# Empty compiler generated dependencies file for nazar_sim.
# This may be replaced when dependencies are built.
