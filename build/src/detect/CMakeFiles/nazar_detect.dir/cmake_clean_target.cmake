file(REMOVE_RECURSE
  "libnazar_detect.a"
)
