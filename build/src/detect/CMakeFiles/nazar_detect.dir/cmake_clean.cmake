file(REMOVE_RECURSE
  "CMakeFiles/nazar_detect.dir/detector.cc.o"
  "CMakeFiles/nazar_detect.dir/detector.cc.o.d"
  "CMakeFiles/nazar_detect.dir/godin.cc.o"
  "CMakeFiles/nazar_detect.dir/godin.cc.o.d"
  "CMakeFiles/nazar_detect.dir/ks_test.cc.o"
  "CMakeFiles/nazar_detect.dir/ks_test.cc.o.d"
  "CMakeFiles/nazar_detect.dir/mahalanobis.cc.o"
  "CMakeFiles/nazar_detect.dir/mahalanobis.cc.o.d"
  "CMakeFiles/nazar_detect.dir/metrics.cc.o"
  "CMakeFiles/nazar_detect.dir/metrics.cc.o.d"
  "CMakeFiles/nazar_detect.dir/scores.cc.o"
  "CMakeFiles/nazar_detect.dir/scores.cc.o.d"
  "CMakeFiles/nazar_detect.dir/ssl.cc.o"
  "CMakeFiles/nazar_detect.dir/ssl.cc.o.d"
  "libnazar_detect.a"
  "libnazar_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
