
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detector.cc" "src/detect/CMakeFiles/nazar_detect.dir/detector.cc.o" "gcc" "src/detect/CMakeFiles/nazar_detect.dir/detector.cc.o.d"
  "/root/repo/src/detect/godin.cc" "src/detect/CMakeFiles/nazar_detect.dir/godin.cc.o" "gcc" "src/detect/CMakeFiles/nazar_detect.dir/godin.cc.o.d"
  "/root/repo/src/detect/ks_test.cc" "src/detect/CMakeFiles/nazar_detect.dir/ks_test.cc.o" "gcc" "src/detect/CMakeFiles/nazar_detect.dir/ks_test.cc.o.d"
  "/root/repo/src/detect/mahalanobis.cc" "src/detect/CMakeFiles/nazar_detect.dir/mahalanobis.cc.o" "gcc" "src/detect/CMakeFiles/nazar_detect.dir/mahalanobis.cc.o.d"
  "/root/repo/src/detect/metrics.cc" "src/detect/CMakeFiles/nazar_detect.dir/metrics.cc.o" "gcc" "src/detect/CMakeFiles/nazar_detect.dir/metrics.cc.o.d"
  "/root/repo/src/detect/scores.cc" "src/detect/CMakeFiles/nazar_detect.dir/scores.cc.o" "gcc" "src/detect/CMakeFiles/nazar_detect.dir/scores.cc.o.d"
  "/root/repo/src/detect/ssl.cc" "src/detect/CMakeFiles/nazar_detect.dir/ssl.cc.o" "gcc" "src/detect/CMakeFiles/nazar_detect.dir/ssl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nazar_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
