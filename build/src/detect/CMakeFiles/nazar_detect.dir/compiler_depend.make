# Empty compiler generated dependencies file for nazar_detect.
# This may be replaced when dependencies are built.
