file(REMOVE_RECURSE
  "libnazar_core.a"
)
