# Empty dependencies file for nazar_core.
# This may be replaced when dependencies are built.
