
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/nazar.cc" "src/core/CMakeFiles/nazar_core.dir/nazar.cc.o" "gcc" "src/core/CMakeFiles/nazar_core.dir/nazar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nazar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/nazar_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nazar_data.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/nazar_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/nazar_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nazar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rca/CMakeFiles/nazar_rca.dir/DependInfo.cmake"
  "/root/repo/build/src/driftlog/CMakeFiles/nazar_driftlog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
