file(REMOVE_RECURSE
  "CMakeFiles/nazar_core.dir/nazar.cc.o"
  "CMakeFiles/nazar_core.dir/nazar.cc.o.d"
  "libnazar_core.a"
  "libnazar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
