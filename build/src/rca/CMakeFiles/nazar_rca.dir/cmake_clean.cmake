file(REMOVE_RECURSE
  "CMakeFiles/nazar_rca.dir/analyzer.cc.o"
  "CMakeFiles/nazar_rca.dir/analyzer.cc.o.d"
  "CMakeFiles/nazar_rca.dir/attribute_set.cc.o"
  "CMakeFiles/nazar_rca.dir/attribute_set.cc.o.d"
  "CMakeFiles/nazar_rca.dir/fim.cc.o"
  "CMakeFiles/nazar_rca.dir/fim.cc.o.d"
  "CMakeFiles/nazar_rca.dir/fms.cc.o"
  "CMakeFiles/nazar_rca.dir/fms.cc.o.d"
  "CMakeFiles/nazar_rca.dir/set_reduction.cc.o"
  "CMakeFiles/nazar_rca.dir/set_reduction.cc.o.d"
  "libnazar_rca.a"
  "libnazar_rca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_rca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
