
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rca/analyzer.cc" "src/rca/CMakeFiles/nazar_rca.dir/analyzer.cc.o" "gcc" "src/rca/CMakeFiles/nazar_rca.dir/analyzer.cc.o.d"
  "/root/repo/src/rca/attribute_set.cc" "src/rca/CMakeFiles/nazar_rca.dir/attribute_set.cc.o" "gcc" "src/rca/CMakeFiles/nazar_rca.dir/attribute_set.cc.o.d"
  "/root/repo/src/rca/fim.cc" "src/rca/CMakeFiles/nazar_rca.dir/fim.cc.o" "gcc" "src/rca/CMakeFiles/nazar_rca.dir/fim.cc.o.d"
  "/root/repo/src/rca/fms.cc" "src/rca/CMakeFiles/nazar_rca.dir/fms.cc.o" "gcc" "src/rca/CMakeFiles/nazar_rca.dir/fms.cc.o.d"
  "/root/repo/src/rca/set_reduction.cc" "src/rca/CMakeFiles/nazar_rca.dir/set_reduction.cc.o" "gcc" "src/rca/CMakeFiles/nazar_rca.dir/set_reduction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/driftlog/CMakeFiles/nazar_driftlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
