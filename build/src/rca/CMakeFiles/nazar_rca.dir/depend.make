# Empty dependencies file for nazar_rca.
# This may be replaced when dependencies are built.
