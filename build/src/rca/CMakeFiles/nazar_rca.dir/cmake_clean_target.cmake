file(REMOVE_RECURSE
  "libnazar_rca.a"
)
