# Empty compiler generated dependencies file for nazar_data.
# This may be replaced when dependencies are built.
