
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/apps.cc" "src/data/CMakeFiles/nazar_data.dir/apps.cc.o" "gcc" "src/data/CMakeFiles/nazar_data.dir/apps.cc.o.d"
  "/root/repo/src/data/corruption.cc" "src/data/CMakeFiles/nazar_data.dir/corruption.cc.o" "gcc" "src/data/CMakeFiles/nazar_data.dir/corruption.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/nazar_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/nazar_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/domain.cc" "src/data/CMakeFiles/nazar_data.dir/domain.cc.o" "gcc" "src/data/CMakeFiles/nazar_data.dir/domain.cc.o.d"
  "/root/repo/src/data/locations.cc" "src/data/CMakeFiles/nazar_data.dir/locations.cc.o" "gcc" "src/data/CMakeFiles/nazar_data.dir/locations.cc.o.d"
  "/root/repo/src/data/real_rain.cc" "src/data/CMakeFiles/nazar_data.dir/real_rain.cc.o" "gcc" "src/data/CMakeFiles/nazar_data.dir/real_rain.cc.o.d"
  "/root/repo/src/data/stream.cc" "src/data/CMakeFiles/nazar_data.dir/stream.cc.o" "gcc" "src/data/CMakeFiles/nazar_data.dir/stream.cc.o.d"
  "/root/repo/src/data/weather.cc" "src/data/CMakeFiles/nazar_data.dir/weather.cc.o" "gcc" "src/data/CMakeFiles/nazar_data.dir/weather.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nazar_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
