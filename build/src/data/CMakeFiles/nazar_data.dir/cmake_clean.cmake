file(REMOVE_RECURSE
  "CMakeFiles/nazar_data.dir/apps.cc.o"
  "CMakeFiles/nazar_data.dir/apps.cc.o.d"
  "CMakeFiles/nazar_data.dir/corruption.cc.o"
  "CMakeFiles/nazar_data.dir/corruption.cc.o.d"
  "CMakeFiles/nazar_data.dir/dataset.cc.o"
  "CMakeFiles/nazar_data.dir/dataset.cc.o.d"
  "CMakeFiles/nazar_data.dir/domain.cc.o"
  "CMakeFiles/nazar_data.dir/domain.cc.o.d"
  "CMakeFiles/nazar_data.dir/locations.cc.o"
  "CMakeFiles/nazar_data.dir/locations.cc.o.d"
  "CMakeFiles/nazar_data.dir/real_rain.cc.o"
  "CMakeFiles/nazar_data.dir/real_rain.cc.o.d"
  "CMakeFiles/nazar_data.dir/stream.cc.o"
  "CMakeFiles/nazar_data.dir/stream.cc.o.d"
  "CMakeFiles/nazar_data.dir/weather.cc.o"
  "CMakeFiles/nazar_data.dir/weather.cc.o.d"
  "libnazar_data.a"
  "libnazar_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
