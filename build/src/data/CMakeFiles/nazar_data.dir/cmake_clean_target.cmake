file(REMOVE_RECURSE
  "libnazar_data.a"
)
