file(REMOVE_RECURSE
  "CMakeFiles/nazar_common.dir/logging.cc.o"
  "CMakeFiles/nazar_common.dir/logging.cc.o.d"
  "CMakeFiles/nazar_common.dir/rng.cc.o"
  "CMakeFiles/nazar_common.dir/rng.cc.o.d"
  "CMakeFiles/nazar_common.dir/sim_date.cc.o"
  "CMakeFiles/nazar_common.dir/sim_date.cc.o.d"
  "CMakeFiles/nazar_common.dir/stats.cc.o"
  "CMakeFiles/nazar_common.dir/stats.cc.o.d"
  "CMakeFiles/nazar_common.dir/table_printer.cc.o"
  "CMakeFiles/nazar_common.dir/table_printer.cc.o.d"
  "CMakeFiles/nazar_common.dir/zipf.cc.o"
  "CMakeFiles/nazar_common.dir/zipf.cc.o.d"
  "libnazar_common.a"
  "libnazar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
