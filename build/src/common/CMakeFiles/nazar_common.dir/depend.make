# Empty dependencies file for nazar_common.
# This may be replaced when dependencies are built.
