file(REMOVE_RECURSE
  "libnazar_common.a"
)
