file(REMOVE_RECURSE
  "CMakeFiles/nazar_deploy.dir/matcher.cc.o"
  "CMakeFiles/nazar_deploy.dir/matcher.cc.o.d"
  "CMakeFiles/nazar_deploy.dir/model_pool.cc.o"
  "CMakeFiles/nazar_deploy.dir/model_pool.cc.o.d"
  "CMakeFiles/nazar_deploy.dir/model_version.cc.o"
  "CMakeFiles/nazar_deploy.dir/model_version.cc.o.d"
  "CMakeFiles/nazar_deploy.dir/registry.cc.o"
  "CMakeFiles/nazar_deploy.dir/registry.cc.o.d"
  "libnazar_deploy.a"
  "libnazar_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
