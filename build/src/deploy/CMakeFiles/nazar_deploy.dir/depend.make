# Empty dependencies file for nazar_deploy.
# This may be replaced when dependencies are built.
