file(REMOVE_RECURSE
  "libnazar_deploy.a"
)
