
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deploy/matcher.cc" "src/deploy/CMakeFiles/nazar_deploy.dir/matcher.cc.o" "gcc" "src/deploy/CMakeFiles/nazar_deploy.dir/matcher.cc.o.d"
  "/root/repo/src/deploy/model_pool.cc" "src/deploy/CMakeFiles/nazar_deploy.dir/model_pool.cc.o" "gcc" "src/deploy/CMakeFiles/nazar_deploy.dir/model_pool.cc.o.d"
  "/root/repo/src/deploy/model_version.cc" "src/deploy/CMakeFiles/nazar_deploy.dir/model_version.cc.o" "gcc" "src/deploy/CMakeFiles/nazar_deploy.dir/model_version.cc.o.d"
  "/root/repo/src/deploy/registry.cc" "src/deploy/CMakeFiles/nazar_deploy.dir/registry.cc.o" "gcc" "src/deploy/CMakeFiles/nazar_deploy.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nazar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rca/CMakeFiles/nazar_rca.dir/DependInfo.cmake"
  "/root/repo/build/src/driftlog/CMakeFiles/nazar_driftlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
