file(REMOVE_RECURSE
  "CMakeFiles/nazar_fed.dir/federated.cc.o"
  "CMakeFiles/nazar_fed.dir/federated.cc.o.d"
  "libnazar_fed.a"
  "libnazar_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
