# Empty dependencies file for nazar_fed.
# This may be replaced when dependencies are built.
