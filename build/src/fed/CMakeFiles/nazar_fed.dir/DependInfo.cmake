
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fed/federated.cc" "src/fed/CMakeFiles/nazar_fed.dir/federated.cc.o" "gcc" "src/fed/CMakeFiles/nazar_fed.dir/federated.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adapt/CMakeFiles/nazar_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nazar_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nazar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
