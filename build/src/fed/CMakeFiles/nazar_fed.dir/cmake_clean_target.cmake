file(REMOVE_RECURSE
  "libnazar_fed.a"
)
