file(REMOVE_RECURSE
  "CMakeFiles/nazar_adapt.dir/augment.cc.o"
  "CMakeFiles/nazar_adapt.dir/augment.cc.o.d"
  "CMakeFiles/nazar_adapt.dir/memo.cc.o"
  "CMakeFiles/nazar_adapt.dir/memo.cc.o.d"
  "CMakeFiles/nazar_adapt.dir/tent.cc.o"
  "CMakeFiles/nazar_adapt.dir/tent.cc.o.d"
  "libnazar_adapt.a"
  "libnazar_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
