
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/augment.cc" "src/adapt/CMakeFiles/nazar_adapt.dir/augment.cc.o" "gcc" "src/adapt/CMakeFiles/nazar_adapt.dir/augment.cc.o.d"
  "/root/repo/src/adapt/memo.cc" "src/adapt/CMakeFiles/nazar_adapt.dir/memo.cc.o" "gcc" "src/adapt/CMakeFiles/nazar_adapt.dir/memo.cc.o.d"
  "/root/repo/src/adapt/tent.cc" "src/adapt/CMakeFiles/nazar_adapt.dir/tent.cc.o" "gcc" "src/adapt/CMakeFiles/nazar_adapt.dir/tent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nazar_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
