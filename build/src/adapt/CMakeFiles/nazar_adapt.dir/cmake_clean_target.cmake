file(REMOVE_RECURSE
  "libnazar_adapt.a"
)
