# Empty compiler generated dependencies file for nazar_adapt.
# This may be replaced when dependencies are built.
