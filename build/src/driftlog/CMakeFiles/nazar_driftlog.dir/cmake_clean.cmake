file(REMOVE_RECURSE
  "CMakeFiles/nazar_driftlog.dir/csv.cc.o"
  "CMakeFiles/nazar_driftlog.dir/csv.cc.o.d"
  "CMakeFiles/nazar_driftlog.dir/drift_log.cc.o"
  "CMakeFiles/nazar_driftlog.dir/drift_log.cc.o.d"
  "CMakeFiles/nazar_driftlog.dir/query.cc.o"
  "CMakeFiles/nazar_driftlog.dir/query.cc.o.d"
  "CMakeFiles/nazar_driftlog.dir/sql.cc.o"
  "CMakeFiles/nazar_driftlog.dir/sql.cc.o.d"
  "CMakeFiles/nazar_driftlog.dir/table.cc.o"
  "CMakeFiles/nazar_driftlog.dir/table.cc.o.d"
  "CMakeFiles/nazar_driftlog.dir/value.cc.o"
  "CMakeFiles/nazar_driftlog.dir/value.cc.o.d"
  "libnazar_driftlog.a"
  "libnazar_driftlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nazar_driftlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
