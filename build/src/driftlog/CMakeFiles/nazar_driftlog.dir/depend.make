# Empty dependencies file for nazar_driftlog.
# This may be replaced when dependencies are built.
