file(REMOVE_RECURSE
  "libnazar_driftlog.a"
)
