
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driftlog/csv.cc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/csv.cc.o" "gcc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/csv.cc.o.d"
  "/root/repo/src/driftlog/drift_log.cc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/drift_log.cc.o" "gcc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/drift_log.cc.o.d"
  "/root/repo/src/driftlog/query.cc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/query.cc.o" "gcc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/query.cc.o.d"
  "/root/repo/src/driftlog/sql.cc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/sql.cc.o" "gcc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/sql.cc.o.d"
  "/root/repo/src/driftlog/table.cc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/table.cc.o" "gcc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/table.cc.o.d"
  "/root/repo/src/driftlog/value.cc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/value.cc.o" "gcc" "src/driftlog/CMakeFiles/nazar_driftlog.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nazar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
