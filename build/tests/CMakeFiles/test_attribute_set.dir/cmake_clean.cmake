file(REMOVE_RECURSE
  "CMakeFiles/test_attribute_set.dir/test_attribute_set.cc.o"
  "CMakeFiles/test_attribute_set.dir/test_attribute_set.cc.o.d"
  "test_attribute_set"
  "test_attribute_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attribute_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
