file(REMOVE_RECURSE
  "CMakeFiles/test_driftlog.dir/test_driftlog.cc.o"
  "CMakeFiles/test_driftlog.dir/test_driftlog.cc.o.d"
  "test_driftlog"
  "test_driftlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driftlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
