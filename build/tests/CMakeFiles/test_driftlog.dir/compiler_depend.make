# Empty compiler generated dependencies file for test_driftlog.
# This may be replaced when dependencies are built.
