file(REMOVE_RECURSE
  "CMakeFiles/test_detect_families.dir/test_detect_families.cc.o"
  "CMakeFiles/test_detect_families.dir/test_detect_families.cc.o.d"
  "test_detect_families"
  "test_detect_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
