# Empty dependencies file for test_detect_families.
# This may be replaced when dependencies are built.
