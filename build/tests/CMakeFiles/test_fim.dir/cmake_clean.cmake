file(REMOVE_RECURSE
  "CMakeFiles/test_fim.dir/test_fim.cc.o"
  "CMakeFiles/test_fim.dir/test_fim.cc.o.d"
  "test_fim"
  "test_fim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
