# Empty compiler generated dependencies file for test_fim.
# This may be replaced when dependencies are built.
