# Empty compiler generated dependencies file for test_real_rain.
# This may be replaced when dependencies are built.
