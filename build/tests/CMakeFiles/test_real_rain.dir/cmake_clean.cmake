file(REMOVE_RECURSE
  "CMakeFiles/test_real_rain.dir/test_real_rain.cc.o"
  "CMakeFiles/test_real_rain.dir/test_real_rain.cc.o.d"
  "test_real_rain"
  "test_real_rain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_real_rain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
