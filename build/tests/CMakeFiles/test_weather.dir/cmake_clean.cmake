file(REMOVE_RECURSE
  "CMakeFiles/test_weather.dir/test_weather.cc.o"
  "CMakeFiles/test_weather.dir/test_weather.cc.o.d"
  "test_weather"
  "test_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
