file(REMOVE_RECURSE
  "CMakeFiles/test_property_rca.dir/test_property_rca.cc.o"
  "CMakeFiles/test_property_rca.dir/test_property_rca.cc.o.d"
  "test_property_rca"
  "test_property_rca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_rca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
