# Empty dependencies file for test_property_rca.
# This may be replaced when dependencies are built.
