# Empty dependencies file for test_bn_patch.
# This may be replaced when dependencies are built.
