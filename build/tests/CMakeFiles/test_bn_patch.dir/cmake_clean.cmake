file(REMOVE_RECURSE
  "CMakeFiles/test_bn_patch.dir/test_bn_patch.cc.o"
  "CMakeFiles/test_bn_patch.dir/test_bn_patch.cc.o.d"
  "test_bn_patch"
  "test_bn_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bn_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
