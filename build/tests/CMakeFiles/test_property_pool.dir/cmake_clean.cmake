file(REMOVE_RECURSE
  "CMakeFiles/test_property_pool.dir/test_property_pool.cc.o"
  "CMakeFiles/test_property_pool.dir/test_property_pool.cc.o.d"
  "test_property_pool"
  "test_property_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
