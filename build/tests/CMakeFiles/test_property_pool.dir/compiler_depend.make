# Empty compiler generated dependencies file for test_property_pool.
# This may be replaced when dependencies are built.
