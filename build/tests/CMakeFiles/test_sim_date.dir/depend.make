# Empty dependencies file for test_sim_date.
# This may be replaced when dependencies are built.
