file(REMOVE_RECURSE
  "CMakeFiles/test_sim_date.dir/test_sim_date.cc.o"
  "CMakeFiles/test_sim_date.dir/test_sim_date.cc.o.d"
  "test_sim_date"
  "test_sim_date.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_date.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
