# Empty dependencies file for test_godin.
# This may be replaced when dependencies are built.
