file(REMOVE_RECURSE
  "CMakeFiles/test_godin.dir/test_godin.cc.o"
  "CMakeFiles/test_godin.dir/test_godin.cc.o.d"
  "test_godin"
  "test_godin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_godin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
