# Empty compiler generated dependencies file for test_set_reduction.
# This may be replaced when dependencies are built.
