file(REMOVE_RECURSE
  "CMakeFiles/test_set_reduction.dir/test_set_reduction.cc.o"
  "CMakeFiles/test_set_reduction.dir/test_set_reduction.cc.o.d"
  "test_set_reduction"
  "test_set_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
