file(REMOVE_RECURSE
  "CMakeFiles/test_domain.dir/test_domain.cc.o"
  "CMakeFiles/test_domain.dir/test_domain.cc.o.d"
  "test_domain"
  "test_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
