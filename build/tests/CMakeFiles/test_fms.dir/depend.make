# Empty dependencies file for test_fms.
# This may be replaced when dependencies are built.
