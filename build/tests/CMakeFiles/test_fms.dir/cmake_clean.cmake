file(REMOVE_RECURSE
  "CMakeFiles/test_fms.dir/test_fms.cc.o"
  "CMakeFiles/test_fms.dir/test_fms.cc.o.d"
  "test_fms"
  "test_fms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
