file(REMOVE_RECURSE
  "CMakeFiles/test_table_printer.dir/test_table_printer.cc.o"
  "CMakeFiles/test_table_printer.dir/test_table_printer.cc.o.d"
  "test_table_printer"
  "test_table_printer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
