file(REMOVE_RECURSE
  "CMakeFiles/selfdriving_fleet.dir/selfdriving_fleet.cc.o"
  "CMakeFiles/selfdriving_fleet.dir/selfdriving_fleet.cc.o.d"
  "selfdriving_fleet"
  "selfdriving_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfdriving_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
