# Empty dependencies file for selfdriving_fleet.
# This may be replaced when dependencies are built.
