file(REMOVE_RECURSE
  "CMakeFiles/driftlog_walkthrough.dir/driftlog_walkthrough.cc.o"
  "CMakeFiles/driftlog_walkthrough.dir/driftlog_walkthrough.cc.o.d"
  "driftlog_walkthrough"
  "driftlog_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driftlog_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
