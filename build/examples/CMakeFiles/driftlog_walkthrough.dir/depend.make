# Empty dependencies file for driftlog_walkthrough.
# This may be replaced when dependencies are built.
