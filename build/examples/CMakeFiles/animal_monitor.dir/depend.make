# Empty dependencies file for animal_monitor.
# This may be replaced when dependencies are built.
