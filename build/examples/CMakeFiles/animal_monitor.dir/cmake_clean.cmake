file(REMOVE_RECURSE
  "CMakeFiles/animal_monitor.dir/animal_monitor.cc.o"
  "CMakeFiles/animal_monitor.dir/animal_monitor.cc.o.d"
  "animal_monitor"
  "animal_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animal_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
