# Empty dependencies file for bench_fig7_bycause_breakdown.
# This may be replaced when dependencies are built.
