file(REMOVE_RECURSE
  "CMakeFiles/bench_realrain_detection.dir/bench_realrain_detection.cc.o"
  "CMakeFiles/bench_realrain_detection.dir/bench_realrain_detection.cc.o.d"
  "bench_realrain_detection"
  "bench_realrain_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_realrain_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
