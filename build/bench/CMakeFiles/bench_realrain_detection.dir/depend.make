# Empty dependencies file for bench_realrain_detection.
# This may be replaced when dependencies are built.
