# Empty compiler generated dependencies file for bench_table5_rca_fms.
# This may be replaced when dependencies are built.
