file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_rca_fms.dir/bench_table5_rca_fms.cc.o"
  "CMakeFiles/bench_table5_rca_fms.dir/bench_table5_rca_fms.cc.o.d"
  "bench_table5_rca_fms"
  "bench_table5_rca_fms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_rca_fms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
