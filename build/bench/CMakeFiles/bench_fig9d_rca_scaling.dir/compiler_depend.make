# Empty compiler generated dependencies file for bench_fig9d_rca_scaling.
# This may be replaced when dependencies are built.
