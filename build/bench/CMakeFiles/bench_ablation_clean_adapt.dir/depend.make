# Empty dependencies file for bench_ablation_clean_adapt.
# This may be replaced when dependencies are built.
