# Empty dependencies file for bench_fig2_kstest_batch.
# This may be replaced when dependencies are built.
