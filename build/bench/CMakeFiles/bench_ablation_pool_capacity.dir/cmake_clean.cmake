file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pool_capacity.dir/bench_ablation_pool_capacity.cc.o"
  "CMakeFiles/bench_ablation_pool_capacity.dir/bench_ablation_pool_capacity.cc.o.d"
  "bench_ablation_pool_capacity"
  "bench_ablation_pool_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pool_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
