file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_detectors.dir/bench_table1_detectors.cc.o"
  "CMakeFiles/bench_table1_detectors.dir/bench_table1_detectors.cc.o.d"
  "bench_table1_detectors"
  "bench_table1_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
