# Empty dependencies file for bench_fig8_cityscapes_e2e.
# This may be replaced when dependencies are built.
