file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_federated.dir/bench_ext_federated.cc.o"
  "CMakeFiles/bench_ext_federated.dir/bench_ext_federated.cc.o.d"
  "bench_ext_federated"
  "bench_ext_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
