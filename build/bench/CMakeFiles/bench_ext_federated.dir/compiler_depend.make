# Empty compiler generated dependencies file for bench_ext_federated.
# This may be replaced when dependencies are built.
