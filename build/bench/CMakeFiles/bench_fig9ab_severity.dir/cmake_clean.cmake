file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9ab_severity.dir/bench_fig9ab_severity.cc.o"
  "CMakeFiles/bench_fig9ab_severity.dir/bench_fig9ab_severity.cc.o.d"
  "bench_fig9ab_severity"
  "bench_fig9ab_severity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9ab_severity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
