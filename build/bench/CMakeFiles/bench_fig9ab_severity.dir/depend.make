# Empty dependencies file for bench_fig9ab_severity.
# This may be replaced when dependencies are built.
