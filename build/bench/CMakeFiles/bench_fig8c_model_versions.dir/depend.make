# Empty dependencies file for bench_fig8c_model_versions.
# This may be replaced when dependencies are built.
