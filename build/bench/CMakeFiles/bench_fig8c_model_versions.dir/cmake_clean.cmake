file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8c_model_versions.dir/bench_fig8c_model_versions.cc.o"
  "CMakeFiles/bench_fig8c_model_versions.dir/bench_fig8c_model_versions.cc.o.d"
  "bench_fig8c_model_versions"
  "bench_fig8c_model_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8c_model_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
