# Empty compiler generated dependencies file for bench_ablation_upload_rate.
# This may be replaced when dependencies are built.
