# Empty dependencies file for bench_fig9c_skew_e2e.
# This may be replaced when dependencies are built.
