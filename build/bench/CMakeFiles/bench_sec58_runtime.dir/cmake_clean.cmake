file(REMOVE_RECURSE
  "CMakeFiles/bench_sec58_runtime.dir/bench_sec58_runtime.cc.o"
  "CMakeFiles/bench_sec58_runtime.dir/bench_sec58_runtime.cc.o.d"
  "bench_sec58_runtime"
  "bench_sec58_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec58_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
