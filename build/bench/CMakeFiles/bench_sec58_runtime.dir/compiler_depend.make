# Empty compiler generated dependencies file for bench_sec58_runtime.
# This may be replaced when dependencies are built.
