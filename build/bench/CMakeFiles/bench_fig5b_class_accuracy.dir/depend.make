# Empty dependencies file for bench_fig5b_class_accuracy.
# This may be replaced when dependencies are built.
