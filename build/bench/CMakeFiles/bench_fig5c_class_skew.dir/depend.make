# Empty dependencies file for bench_fig5c_class_skew.
# This may be replaced when dependencies are built.
