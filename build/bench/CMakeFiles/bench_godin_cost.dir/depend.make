# Empty dependencies file for bench_godin_cost.
# This may be replaced when dependencies are built.
