file(REMOVE_RECURSE
  "CMakeFiles/bench_godin_cost.dir/bench_godin_cost.cc.o"
  "CMakeFiles/bench_godin_cost.dir/bench_godin_cost.cc.o.d"
  "bench_godin_cost"
  "bench_godin_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_godin_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
