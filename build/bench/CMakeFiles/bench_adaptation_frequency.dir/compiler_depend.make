# Empty compiler generated dependencies file for bench_adaptation_frequency.
# This may be replaced when dependencies are built.
