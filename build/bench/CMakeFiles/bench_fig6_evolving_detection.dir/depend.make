# Empty dependencies file for bench_fig6_evolving_detection.
# This may be replaced when dependencies are built.
