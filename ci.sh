#!/usr/bin/env bash
# CI entry point — also runnable locally. Builds the Release tree, a
# ThreadSanitizer tree and an AddressSanitizer tree, then runs the full
# ctest suite under both NAZAR_THREADS=1 (sequential reference) and
# NAZAR_THREADS=4 (parallel runtime). Any test regression or sanitizer
# report fails the script.
#
# Usage: ./ci.sh [--release-only|--tsan-only|--asan-only]
set -euo pipefail

cd "$(dirname "$0")"

JOBS="$(nproc)"
DO_RELEASE=1
DO_TSAN=1
DO_ASAN=1
for arg in "$@"; do
    case "$arg" in
      --release-only) DO_TSAN=0; DO_ASAN=0 ;;
      --tsan-only) DO_RELEASE=0; DO_ASAN=0 ;;
      --asan-only) DO_RELEASE=0; DO_TSAN=0 ;;
      *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

run_suite() {
    local build_dir="$1"
    for threads in 1 4; do
        echo "==== ctest ($build_dir, NAZAR_THREADS=$threads) ===="
        NAZAR_THREADS="$threads" \
            ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
    done
}

if [ "$DO_RELEASE" = 1 ]; then
    cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci -j "$JOBS"
    run_suite build-ci
    # Smoke-run the scaling benches in quick mode so a broken bench
    # binary fails CI even though throughput is not asserted.
    ./build-ci/bench/bench_runtime_scaling --quick > /dev/null
    ./build-ci/bench/bench_fig9d_rca_scaling --sweep --quick > /dev/null
    # SQL engine smoke: a query and its EXPLAIN against a generated
    # log. The EXPLAIN must show the planner actually pruned columns
    # and bound the predicate to a dictionary-id range; the executed
    # query must agree with the differential suite's oracle-checked
    # path (test_columnar runs in every leg above — this checks the
    # nazar_ops wiring on top of it).
    echo "==== sql smoke (Release) ===="
    ./build-ci/tools/nazar_ops gen-log build-ci/sql_smoke.csv 5000 7 \
        > /dev/null
    ./build-ci/tools/nazar_ops sql build-ci/sql_smoke.csv \
        "SELECT weather, COUNT(*) FROM drift_log WHERE drift = true \
         GROUP BY weather ORDER BY COUNT(*) DESC" \
        > build-ci/sql_smoke.out
    grep -q "rows)" build-ci/sql_smoke.out || {
        echo "sql smoke: query produced no result table" >&2; exit 1; }
    ./build-ci/tools/nazar_ops sql build-ci/sql_smoke.csv \
        "EXPLAIN SELECT weather, COUNT(*) FROM drift_log \
         WHERE drift = true GROUP BY weather" \
        > build-ci/sql_explain.out
    grep -q "pruned" build-ci/sql_explain.out || {
        echo "sql smoke: EXPLAIN shows no column pruning" >&2; exit 1; }
    grep -q "ids \[" build-ci/sql_explain.out || {
        echo "sql smoke: EXPLAIN shows no bound id range" >&2; exit 1; }
    # Observability smoke: a short e2e sim must produce a metrics
    # snapshot that parses as JSON and contains spans/counters from
    # every instrumented layer.
    ./build-ci/tools/nazar_ops sim 1 \
        --metrics-out=build-ci/metrics.json > /dev/null
    for key in sim.window sim.cloud.rca rca.fim.mine nn.forward \
               detect.msp.samples driftlog.rows_ingested \
               runtime.batches.inline; do
        grep -q "\"$key\"" build-ci/metrics.json || {
            echo "metrics snapshot missing key: $key" >&2; exit 1; }
    done
    if command -v python3 > /dev/null; then
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
            build-ci/metrics.json
    fi
    # Chaos smoke: a short e2e sim over a lossy channel must still
    # complete, dedup retransmissions, and hold the documented
    # accuracy floor (clean drifted accuracy is ~0.84 at this scale;
    # 0.70 is the deliberately conservative bound — regression past it
    # means graceful degradation broke, not that the network got
    # unlucky: the fault seed is fixed).
    echo "==== chaos smoke (Release) ===="
    ./build-ci/tools/nazar_ops sim 2 --drop=0.2 --dup=0.1 \
        --push-drop=0.2 --metrics-out=build-ci/chaos_metrics.json \
        > build-ci/chaos_smoke.log
    ./build-ci/tools/nazar_ops faults build-ci/chaos_metrics.json \
        > /dev/null
    dedup="$(grep -o '"net\.dedup_hits": [0-9]*' \
        build-ci/chaos_metrics.json | grep -o '[0-9]*$')"
    [ "${dedup:-0}" -gt 0 ] || {
        echo "chaos smoke: net.dedup_hits is zero" >&2; exit 1; }
    awk '/^avgAccuracyDrifted/ {
            if ($2 + 0 < 0.70) {
                print "chaos smoke: avgAccuracyDrifted " $2 \
                      " below floor 0.70" > "/dev/stderr"
                exit 1
            }
            found = 1
         }
         END { if (!found) exit 1 }' build-ci/chaos_smoke.log
    ./build-ci/bench/bench_fault_sweep --quick > /dev/null
    # Crash-recovery smoke: a lossy sim with durability on and the
    # crash injector armed must lose the cloud mid-run, rebuild it
    # from the WAL+snapshot directory, finish every window, and hold
    # the same accuracy floor as the chaos smoke. The state directory
    # it leaves behind must then be loadable offline.
    echo "==== crash-recovery smoke (Release) ===="
    rm -rf build-ci/crash_state
    ./build-ci/tools/nazar_ops sim 2 --drop=0.1 --dup=0.05 \
        --persist-dir=build-ci/crash_state --snapshot-every=64 \
        --crash-at=333 > build-ci/crash_smoke.log
    grep -q '^cloudCrashes [1-9]' build-ci/crash_smoke.log || {
        echo "crash smoke: injected crash never fired" >&2; exit 1; }
    awk '/^avgAccuracyDrifted/ {
            if ($2 + 0 < 0.70) {
                print "crash smoke: avgAccuracyDrifted " $2 \
                      " below floor 0.70" > "/dev/stderr"
                exit 1
            }
            found = 1
         }
         END { if (!found) exit 1 }' build-ci/crash_smoke.log
    ./build-ci/tools/nazar_ops recover build-ci/crash_state > /dev/null
    ./build-ci/tools/nazar_ops wal build-ci/crash_state/wal.log \
        > /dev/null
    # The offline scrubber must certify the crash-surviving directory:
    # every WAL record CRC, every chain-file header and link.
    ./build-ci/tools/nazar_ops scrub build-ci/crash_state \
        > build-ci/crash_scrub.out
    grep -q "SCRUB ok" build-ci/crash_scrub.out || {
        echo "crash smoke: scrub found integrity issues" >&2; exit 1; }
    ./build-ci/bench/bench_crash_recovery --quick > /dev/null
    # Disk-fault smoke: a sim with an injected mid-run ENOSPC on the
    # WAL write path must latch the fsync gate (not crash), rebuild
    # from the last durable state, finish every window, and leave a
    # scrub-clean directory behind.
    echo "==== disk-fault smoke (Release) ===="
    rm -rf build-ci/diskfault_state
    ./build-ci/tools/nazar_ops sim 2 --drop=0.1 --dup=0.05 \
        --persist-dir=build-ci/diskfault_state --snapshot-every=64 \
        --fault-site=env.wal.write --fault-kind=enospc --fault-hit=333 \
        > build-ci/diskfault_smoke.log
    grep -q '^cloudDiskFaults [1-9]' build-ci/diskfault_smoke.log || {
        echo "disk-fault smoke: injected fault never fired" >&2
        exit 1; }
    ./build-ci/tools/nazar_ops scrub build-ci/diskfault_state \
        > build-ci/diskfault_scrub.out
    grep -q "SCRUB ok" build-ci/diskfault_scrub.out || {
        echo "disk-fault smoke: scrub found integrity issues" >&2
        exit 1; }
    # Networked-cloud smoke: a real server process behind a real
    # socket, chaotic clients, exact reconciliation, then a SIGTERM
    # shutdown that must drain cleanly and leave a loadable state dir.
    echo "==== ingest server smoke (Release) ===="
    rm -rf build-ci/served_state build-ci/served.port
    ./build-ci/tools/nazar_served serve \
        --port-file=build-ci/served.port \
        --persist-dir=build-ci/served_state --fsync=fdatasync \
        > build-ci/served.log 2>&1 &
    SERVED_PID=$!
    for _ in $(seq 1 100); do
        [ -f build-ci/served.port ] && break
        sleep 0.1
    done
    [ -f build-ci/served.port ] || {
        echo "server smoke: port file never appeared" >&2; exit 1; }
    ./build-ci/tools/nazar_served load \
        --port="$(cat build-ci/served.port)" \
        --clients=4 --events=200 --drop=0.3 --dup=0.2 --fault-seed=11 \
        > build-ci/served_load.log
    grep -q "RECONCILED ok" build-ci/served_load.log || {
        echo "server smoke: load did not reconcile" >&2; exit 1; }
    kill -TERM "$SERVED_PID"
    wait "$SERVED_PID" || {
        echo "server smoke: serve exited non-zero" >&2; exit 1; }
    grep -q "clean shutdown" build-ci/served.log || {
        echo "server smoke: no clean shutdown line" >&2; exit 1; }
    ./build-ci/tools/nazar_ops recover build-ci/served_state \
        > /dev/null
    ./build-ci/bench/bench_ingest_server --quick > /dev/null
    # Kill-restart chaos smoke: the supervise harness kills the
    # committer mid-load (SIGKILL-equivalent crash injection) twice,
    # rebuilds the cloud from the state dir and restarts the listener
    # on the same port; the chaotic reconnect-enabled clients must
    # resume their sessions and reconcile exactly — every event
    # accepted once, every deliberate duplicate rejected — and the
    # surviving state dir must load offline.
    echo "==== kill-restart chaos smoke (Release) ===="
    rm -rf build-ci/supervise_state
    ./build-ci/tools/nazar_served supervise \
        --persist-dir=build-ci/supervise_state \
        --kills=2 --kill-after-ms=300 --clients=4 --events=8000 \
        --drop=0.02 --dup=0.05 --fault-seed=11 \
        > build-ci/supervise.log
    grep -q "RECONCILED ok" build-ci/supervise.log || {
        echo "kill-restart smoke: load did not reconcile" >&2
        exit 1; }
    grep -q "SUPERVISE kills=2 .*stateOk=1" build-ci/supervise.log || {
        echo "kill-restart smoke: expected 2 kills and clean state" >&2
        exit 1; }
    ./build-ci/tools/nazar_ops recover build-ci/supervise_state \
        > /dev/null
    # Disk-fault supervise smoke: two latch->restart episodes (ENOSPC
    # on the write path, then a failed fsync that drops dirty pages).
    # Each faulted child stops acking, reports the latch and exits;
    # the supervisor restarts over the recovered state; the resuming
    # clients must still reconcile exactly-once, and the surviving
    # directory must scrub clean.
    echo "==== disk-fault supervise smoke (Release) ===="
    rm -rf build-ci/diskfault_sup_state
    ./build-ci/tools/nazar_served supervise \
        --persist-dir=build-ci/diskfault_sup_state \
        --disk-faults=2 --clients=3 --events=2000 \
        --drop=0.02 --dup=0.05 --fault-seed=11 \
        > build-ci/diskfault_sup.log
    grep -q "RECONCILED ok" build-ci/diskfault_sup.log || {
        echo "disk-fault supervise smoke: did not reconcile" >&2
        exit 1; }
    grep -q "diskFaults=2 .*stateOk=1" build-ci/diskfault_sup.log || {
        echo "disk-fault supervise smoke: expected 2 episodes and" \
             "clean state" >&2
        exit 1; }
    ./build-ci/tools/nazar_ops scrub build-ci/diskfault_sup_state \
        > build-ci/diskfault_sup_scrub.out
    grep -q "SCRUB ok" build-ci/diskfault_sup_scrub.out || {
        echo "disk-fault supervise smoke: scrub found issues" >&2
        exit 1; }
    # Causal-tracing smoke: a chaotic in-process served run with
    # tracing on must produce a Perfetto-loadable Chrome trace where a
    # device upload's trace id links the client send through the
    # server's reader/committer threads to the WAL sync and the ack —
    # and the summarizer must be able to read its critical path.
    echo "==== causal tracing smoke (Release) ===="
    rm -rf build-ci/trace_state build-ci/served_trace.json
    ./build-ci/tools/nazar_served smoke \
        --clients=2 --events=80 --drop=0.2 --dup=0.1 --fault-seed=7 \
        --persist-dir=build-ci/trace_state --fsync=fdatasync \
        --trace-out=build-ci/served_trace.json \
        > build-ci/served_trace.log
    grep -q "RECONCILED ok" build-ci/served_trace.log || {
        echo "tracing smoke: load did not reconcile" >&2; exit 1; }
    grep -q "LOADGEN stage server.queue_wait" \
        build-ci/served_trace.log || {
        echo "tracing smoke: no per-stage breakdown" >&2; exit 1; }
    if command -v python3 > /dev/null; then
        python3 - build-ci/served_trace.json <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
names = {e["name"] for e in events}
for need in ("net.client.ingest", "server.queue_wait",
             "persist.wal.sync", "server.ack"):
    assert need in names, f"missing span: {need}"
spans = {(e["args"]["trace"], e["args"]["span"]): e for e in events}
linked = 0
for e in events:
    parent = (e["args"]["trace"], e["args"]["parent"])
    if e["args"]["parent"] != "0" and parent in spans:
        tids = {e["tid"], spans[parent]["tid"]}
        if e["name"].startswith("server.") and len(tids) >= 2:
            linked += 1
assert linked > 0, "no cross-thread parent links resolved"
print(f"tracing smoke: {len(events)} events, "
      f"{linked} cross-thread links")
EOF
    fi
    ./build-ci/tools/nazar_ops trace build-ci/served_trace.json \
        > build-ci/trace_summary.out
    grep -q "critical path" build-ci/trace_summary.out || {
        echo "tracing smoke: no critical-path summary" >&2; exit 1; }
    # Tracing off must be bit-identical to never-traced runs at both
    # pool widths (the gtest drives the full fleet loop both ways).
    echo "==== tracing-off bit-identical (Release) ===="
    ./build-ci/tests/test_obs --gtest_filter=\
'ObsDeterminism.TracingOnOffBitIdenticalAcrossThreadCounts' \
        > /dev/null
fi

if [ "$DO_TSAN" = 1 ]; then
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNAZAR_SANITIZE=thread
    cmake --build build-tsan -j "$JOBS"
    # TSAN aborts the process on any report (halt_on_error), so a data
    # race in the parallel runtime or the sharded RCA scans fails ctest.
    export TSAN_OPTIONS="halt_on_error=1"
    run_suite build-tsan
    # Hammer the metrics registry explicitly under TSAN: 8 threads on
    # shared counters/histograms plus concurrent registration.
    echo "==== obs registry stress (TSAN) ===="
    ./build-tsan/tests/test_obs \
        --gtest_filter='ObsTest.ConcurrentRegistryStress'
    # And the trace rings: 8 threads appending spans concurrently with
    # tracing on must be race-free and lose nothing uncounted.
    echo "==== trace ring stress (TSAN) ===="
    ./build-tsan/tests/test_obs \
        --gtest_filter='ObsTest.TraceRingsConcurrentStress'
    # Chaos smoke under TSAN: the faulted channel + idempotent ingest
    # must be race-free at both pool widths.
    for threads in 1 4; do
        echo "==== chaos smoke (TSAN, NAZAR_THREADS=$threads) ===="
        NAZAR_THREADS="$threads" ./build-tsan/tools/nazar_ops sim 1 \
            --drop=0.2 --dup=0.1 --push-drop=0.2 > /dev/null
    done
fi

if [ "$DO_ASAN" = 1 ]; then
    cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNAZAR_SANITIZE=address
    cmake --build build-asan -j "$JOBS"
    # ASAN + LSAN: heap misuse or a leak anywhere in the suite fails
    # ctest. The durability layer is the main customer — every crash
    # injection unwinds through the WAL/snapshot file handles.
    export ASAN_OPTIONS="halt_on_error=1"
    run_suite build-asan
    # Crash-recovery smoke under ASAN: the crash/reopen cycle must not
    # leak the WAL handle or the recovered buffers.
    echo "==== crash-recovery smoke (ASAN) ===="
    rm -rf build-asan/crash_state
    ./build-asan/tools/nazar_ops sim 1 \
        --persist-dir=build-asan/crash_state --snapshot-every=64 \
        --crash-at=333 > /dev/null
    # Disk-fault smoke under ASAN: the Env fault paths (short write,
    # latch, dropped dirty tail) and the faulted-cloud rebuild must
    # neither leak the poisoned WAL handle nor touch freed buffers.
    echo "==== disk-fault smoke (ASAN) ===="
    rm -rf build-asan/diskfault_state
    ./build-asan/tools/nazar_ops sim 1 \
        --persist-dir=build-asan/diskfault_state --snapshot-every=64 \
        --fault-site=env.wal.sync --fault-kind=sync_fail --fault-hit=200 \
        > /dev/null
    ./build-asan/tools/nazar_ops scrub build-asan/diskfault_state \
        > /dev/null
    # Ingest-server smoke under ASAN: server, chaotic clients and
    # shutdown in one process — sockets, reader threads and the
    # committer must neither leak nor touch freed frames.
    echo "==== ingest server smoke (ASAN) ===="
    ./build-asan/tools/nazar_served smoke \
        --clients=4 --events=100 --drop=0.3 --dup=0.2 --fault-seed=11 \
        > /dev/null
fi

echo "CI OK"
