/**
 * @file
 * Self-driving scenario (paper §5.1 "Cityscapes"): vehicles across
 * European cities classifying traffic objects, compared across the
 * three deployment strategies using the end-to-end Runner — a compact
 * version of the paper's headline experiment (Fig 8).
 *
 * Run: ./selfdriving_fleet
 */
#include <cstdio>

#include "common/logging.h"
#include "sim/runner.h"

using namespace nazar;

int
main()
{
    setLogLevel(LogLevel::kWarn);
    std::printf("self-driving fleet — traffic-object classification\n");
    std::printf("===================================================\n\n");

    data::AppSpec app = data::makeCityscapesApp();
    const int days = 56;
    data::WeatherModel weather(app.locations, days, 2020);
    std::printf("%zu cities, drift on %.0f%% of city-days\n\n",
                app.locations.size(),
                100.0 * weather.driftDayFraction());

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet34;
    config.windows = 4;
    config.workload.days = days;
    config.workload.seed = 4242;
    config.seed = 4243;

    for (sim::Strategy strategy :
         {sim::Strategy::kNoAdapt, sim::Strategy::kAdaptAll,
          sim::Strategy::kNazar}) {
        config.strategy = strategy;
        std::printf("running strategy: %s...\n",
                    toString(strategy).c_str());
        sim::Runner runner(app, weather, config);
        sim::RunResult result = runner.run();

        std::printf("  base clean accuracy: %.1f%%\n",
                    100.0 * result.baseCleanAccuracy);
        for (const auto &w : result.windows) {
            std::printf("  window %d: accuracy %.1f%% "
                        "(drifted %.1f%%), detection rate %.2f",
                        w.window, 100.0 * w.accuracyAll(),
                        100.0 * w.accuracyDrifted(), w.detectionRate());
            if (strategy == sim::Strategy::kNazar)
                std::printf(", %zu causes, pool %zu", w.rootCauses,
                            w.poolSize);
            std::printf("\n");
        }
        std::printf("  => average (last %d windows): all %.1f%%, "
                    "drifted %.1f%%\n\n",
                    config.windows - 1,
                    100.0 * result.avgAccuracyAll(),
                    100.0 * result.avgAccuracyDrifted());
    }
    std::printf("expected ordering (paper Fig 8): nazar > adapt-all "
                ">= no-adapt, with the largest gap on drifted data.\n");
    return 0;
}
