/**
 * @file
 * Walkthrough of the paper's §3.3 worked example (Tables 2 and 3):
 * builds the exact 5-entry drift log, prints the FIM metric table,
 * shows set reduction merging the fine-grained causes, and runs the
 * counterfactual pass that leaves {weather=snow} as the single root
 * cause.
 *
 * Run: ./driftlog_walkthrough
 */
#include <cstdio>

#include "common/table_printer.h"
#include "driftlog/drift_log.h"
#include "rca/analyzer.h"

using namespace nazar;

int
main()
{
    std::printf("drift-log walkthrough (paper §3.3, Tables 2-3)\n");
    std::printf("==============================================\n\n");

    // ---- Table 2: the drift log ---------------------------------------
    driftlog::Table table(driftlog::Schema({
        {"time", driftlog::ValueType::kString},
        {"device_id", driftlog::ValueType::kString},
        {"weather", driftlog::ValueType::kString},
        {"location", driftlog::ValueType::kString},
        {"drift", driftlog::ValueType::kBool},
    }));
    using driftlog::Value;
    table.append({Value("06:02:01"), Value("android_42"),
                  Value("clear-day"), Value("helsinki"), Value(false)});
    table.append({Value("06:02:23"), Value("android_21"),
                  Value("clear-day"), Value("new_york"), Value(false)});
    table.append({Value("06:04:55"), Value("android_21"),
                  Value("clear-day"), Value("new_york"), Value(true)});
    table.append({Value("08:03:32"), Value("android_21"), Value("snow"),
                  Value("new_york"), Value(true)});
    table.append({Value("11:05:01"), Value("android_42"), Value("snow"),
                  Value("helsinki"), Value(true)});

    TablePrinter t2({"Time", "Device ID", "Weather", "Location",
                     "Drift"});
    for (size_t r = 0; r < table.rowCount(); ++r) {
        t2.addRow({table.at(r, 0).toString(), table.at(r, 1).toString(),
                   table.at(r, 2).toString(), table.at(r, 3).toString(),
                   table.at(r, 4).toString()});
    }
    std::printf("Table 2 — the drift log (entry 3 is a detector false "
                "positive):\n%s\n",
                t2.toString().c_str());

    // ---- Table 3: frequent itemset mining ------------------------------
    rca::RcaConfig config;
    config.attributeColumns = {"weather", "location", "device_id"};
    rca::Analyzer analyzer(config);
    auto result = analyzer.analyze(table);

    TablePrinter t3({"rank", "Occ", "Sup", "RR", "Conf", "attributes",
                     "passes thresholds"});
    int rank = 0;
    for (const auto &cause : result.fimTable) {
        t3.addRow({std::to_string(rank++),
                   TablePrinter::num(cause.metrics.occurrence, 2),
                   TablePrinter::num(cause.metrics.support, 2),
                   TablePrinter::num(cause.metrics.riskRatio, 2),
                   TablePrinter::num(cause.metrics.confidence, 2),
                   cause.attrs.toString(),
                   rca::passesThresholds(cause.metrics, config) ? "yes"
                                                                : "no"});
        if (rank > 15)
            break; // the paper's table shows the top rows
    }
    std::printf("Table 3 — FIM metrics (top rows):\n%s\n",
                t3.toString().c_str());

    // ---- Set reduction --------------------------------------------------
    std::printf("set reduction — coarse associations:\n");
    for (const auto &assoc : result.associations) {
        std::printf("  %s  (rr %.2f)\n",
                    assoc.key.attrs.toString().c_str(),
                    assoc.key.metrics.riskRatio);
        for (const auto &fine : assoc.merged)
            std::printf("    <- merged %s\n",
                        fine.attrs.toString().c_str());
    }

    // ---- Counterfactual analysis ---------------------------------------
    std::printf("\ncounterfactual analysis — final root causes:\n");
    for (const auto &cause : result.rootCauses)
        std::printf("  %s (confidence %.2f, risk ratio %.2f)\n",
                    cause.attrs.toString().c_str(),
                    cause.metrics.confidence, cause.metrics.riskRatio);
    std::printf("\n-> the single surviving cause is {weather=snow}, "
                "exactly as the paper concludes: {new_york} and "
                "{android_21} passed the FIM thresholds but their "
                "remaining drift evidence (one false positive) is not "
                "significant once snow's entries are explained.\n");
    return 0;
}
