/**
 * @file
 * Quickstart: the minimal Nazar loop in one file.
 *
 * 1. Train a classifier on clean data.
 * 2. Wrap it in the Nazar system and register devices.
 * 3. Stream inferences — Nazar detects drift on-device and logs it.
 * 4. Trigger an analysis cycle: root causes are diagnosed, by-cause
 *    model versions are adapted and deployed to every device.
 * 5. Subsequent inferences on the drifted condition use the adapted
 *    version and recover accuracy.
 *
 * Run: ./quickstart
 */
#include <cstdio>

#include "common/logging.h"
#include "core/nazar.h"
#include "data/apps.h"

using namespace nazar;

namespace {

/** Generate one inference request for a device. */
data::StreamEvent
makeEvent(const data::AppSpec &app, const data::Corruptor &corruptor,
          int device, data::Weather weather, Rng &rng)
{
    data::StreamEvent ev;
    ev.when = SimDate(1, 36000);
    ev.deviceId = device;
    ev.locationId = 0;
    ev.weather = weather;
    ev.label = static_cast<int>(rng.index(app.domain.numClasses()));
    ev.features = app.domain.sample(ev.label, rng);
    if (weather != data::Weather::kClear) {
        ev.corruption = data::weatherCorruption(weather);
        ev.severity = 3;
        ev.trueDrift = true;
        ev.features =
            corruptor.apply(ev.features, ev.corruption, 3, rng);
    }
    return ev;
}

/** Accuracy of the deployed system over a burst of events. */
double
measure(core::Nazar &nazar, const data::AppSpec &app,
        const data::Corruptor &corruptor, data::Weather weather,
        int count, Rng &rng)
{
    int correct = 0;
    for (int i = 0; i < count; ++i) {
        data::StreamEvent ev =
            makeEvent(app, corruptor, i % 4, weather, rng);
        auto out = nazar.infer(ev.deviceId, ev);
        correct += out.predicted == ev.label ? 1 : 0;
    }
    return static_cast<double>(correct) / count;
}

} // namespace

int
main()
{
    setLogLevel(LogLevel::kWarn);
    std::printf("nazar quickstart\n================\n\n");

    // 1. An application domain and a model trained on clean data.
    data::AppSpec app = data::makeAnimalsApp();
    data::Corruptor corruptor(app.domain.featureDim());
    Rng rng(2024);
    auto train = app.domain.makeBalancedDataset(app.trainPerClass, rng);
    nn::Classifier model(nn::Architecture::kResNet50,
                         app.domain.featureDim(),
                         app.domain.numClasses(), 1);
    std::printf("training the base model (%zu samples)...\n",
                train.size());
    model.trainSupervised(train.x, train.labels, nn::TrainConfig{});

    // 2. Wrap it in Nazar; register a small fleet.
    core::NazarConfig config;
    config.uploadSampleRate = 0.5;
    core::Nazar nazar(config, std::move(model));
    for (int d = 0; d < 4; ++d)
        nazar.registerDevice(d, "new_york");
    nazar.onAlert([](const core::Alert &alert) {
        std::printf("  [alert] %s\n", alert.message.c_str());
    });

    // 3. Clear weather: the model serves accurately.
    double clear_acc = measure(nazar, app, corruptor,
                               data::Weather::kClear, 300, rng);
    std::printf("\naccuracy on clear days: %.1f%%\n",
                100.0 * clear_acc);

    // A snow front arrives; accuracy degrades and drift is detected.
    double snow_before = measure(nazar, app, corruptor,
                                 data::Weather::kSnow, 300, rng);
    std::printf("accuracy in snow (before adaptation): %.1f%%\n",
                100.0 * snow_before);

    // 4. Run an analysis cycle: diagnose, adapt by cause, deploy.
    std::printf("\nrunning root-cause analysis + adaptation...\n");
    auto cycle = nazar.analyzeNow();
    for (const auto &cause : cycle.analysis.rootCauses)
        std::printf("  root cause: %s (risk ratio %.2f)\n",
                    cause.attrs.toString().c_str(),
                    cause.metrics.riskRatio);

    // 5. The same snowy condition, now served by the adapted version.
    double snow_after = measure(nazar, app, corruptor,
                                data::Weather::kSnow, 300, rng);
    std::printf("\naccuracy in snow (after adaptation): %.1f%% "
                "(was %.1f%%)\n",
                100.0 * snow_after, 100.0 * snow_before);
    std::printf("model versions on device 0: %zu\n",
                nazar.device(0).pool().size());
    return 0;
}
