/**
 * @file
 * Animal-identifier scenario (paper §5.1 "Animals"): a geo-distributed
 * species-classification app across 7 world locations, 16 devices
 * each, with weather driven by the historical-weather emulation.
 *
 * Runs a shortened end-to-end deployment with the full Nazar loop and
 * narrates each analysis window: detection rates, diagnosed causes,
 * deployed versions, and accuracy on clean vs drifted traffic.
 *
 * Run: ./animal_monitor
 */
#include <cstdio>

#include "common/logging.h"
#include "core/nazar.h"
#include "data/stream.h"

using namespace nazar;

int
main()
{
    setLogLevel(LogLevel::kWarn);
    std::printf("animal monitor — geo-distributed species "
                "identification\n");
    std::printf("======================================================"
                "\n\n");

    data::AppSpec app = data::makeAnimalsApp();
    const int days = 56; // an 8-week deployment
    data::WeatherModel weather(app.locations, days, 2020);
    std::printf("%zu locations, %.0f%% of location-days have weather "
                "drift\n\n",
                app.locations.size(),
                100.0 * weather.driftDayFraction());

    // Train the base model in the "cloud".
    Rng rng(7);
    auto train = app.domain.makeBalancedDataset(app.trainPerClass, rng);
    nn::Classifier base(nn::Architecture::kResNet50,
                        app.domain.featureDim(),
                        app.domain.numClasses(), 7);
    std::printf("training ResNet50-class base model...\n");
    base.trainSupervised(train.x, train.labels, nn::TrainConfig{});

    // Bring up Nazar and the fleet.
    core::NazarConfig config;
    config.uploadSampleRate = 0.3;
    core::Nazar nazar(config, std::move(base));
    data::WorkloadConfig workload;
    workload.days = days;
    workload.seed = 2020;
    data::WorkloadGenerator generator(app, weather, workload);
    for (int d = 0; d < generator.deviceCount(); ++d) {
        nazar.registerDevice(
            d, app.locations[static_cast<size_t>(
                   generator.locationOfDevice(d))].name);
    }
    std::printf("registered %zu devices\n\n", nazar.deviceCount());

    // Stream the deployment in weekly analysis windows.
    auto events = generator.generate();
    auto windows = makeTimeWindows(days, 8);
    size_t next = 0;
    for (const auto &window : windows) {
        size_t events_in_window = 0, drifted = 0, flagged = 0;
        size_t correct = 0, correct_drifted = 0;
        while (next < events.size() &&
               window.contains(events[next].when.dayIndex())) {
            const auto &ev = events[next++];
            auto out = nazar.infer(ev.deviceId, ev);
            ++events_in_window;
            flagged += out.driftFlag ? 1 : 0;
            bool ok = out.predicted == ev.label;
            correct += ok ? 1 : 0;
            if (ev.trueDrift) {
                ++drifted;
                correct_drifted += ok ? 1 : 0;
            }
        }
        auto cycle = nazar.analyzeNow();
        std::printf("week %d: %4zu inferences (%3zu drifted), "
                    "detection rate %.2f, accuracy %.1f%% "
                    "(drifted %.1f%%)\n",
                    window.index + 1, events_in_window, drifted,
                    events_in_window
                        ? static_cast<double>(flagged) / events_in_window
                        : 0.0,
                    events_in_window ? 100.0 * correct / events_in_window
                                     : 0.0,
                    drifted ? 100.0 * correct_drifted / drifted : 0.0);
        for (const auto &cause : cycle.analysis.rootCauses)
            std::printf("         cause: %s (rr %.2f)\n",
                        cause.attrs.toString().c_str(),
                        cause.metrics.riskRatio);
        for (const auto &version : cycle.newVersions)
            std::printf("         deployed %s (%zu bytes)\n",
                        version.toString().c_str(),
                        version.patch.sizeBytes());
    }

    std::printf("\nfinal state: %zu analysis cycles, device 0 holds "
                "%zu model versions\n",
                nazar.cycleCount(), nazar.device(0).pool().size());
    return 0;
}
