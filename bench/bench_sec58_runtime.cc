/**
 * @file
 * §5.8 "Runtime": wall-clock decomposition of one full Nazar analysis
 * cycle (root-cause analysis vs by-cause adaptation).
 *
 * Paper result: of a ~50-minute end-to-end cycle, root-cause analysis
 * takes only ~46 seconds — adaptation utterly dominates and is the
 * component one scales out with more GPU instances. The absolute
 * numbers here are simulator-scale; the claim under test is the
 * *ratio*.
 */
#include <chrono>

#include "bench_util.h"

#include "common/table_printer.h"
#include "sim/cloud.h"

using namespace nazar;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::MetricsExport metrics(argc, argv);
    bench::printHeader("§5.8", "cycle runtime: RCA vs adaptation");
    bench::printPaperNote("RCA ~46s of a ~50min cycle: adaptation "
                          "dominates (>95% of the cycle)");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier base = bench::trainBase(app);

    sim::CloudConfig config;
    config.minAdaptSamples = 24;
    // A heavier adaptation budget, mimicking the GPU-scale stage.
    config.adapt.steps = 30;

    TablePrinter t({"run", "entries", "causes", "RCA (s)",
                    "adaptation (s)", "RCA share"});
    Rng rng(111);
    data::Corruptor corruptor(app.domain.featureDim());
    const char *weathers[] = {"clear-day", "rain", "snow", "fog"};

    for (int run = 0; run < 4; ++run) {
        sim::Cloud cloud(config, base);
        const size_t entries = 6000;
        for (size_t i = 0; i < entries; ++i) {
            size_t w = rng.index(4);
            driftlog::DriftLogEntry e;
            e.time = SimDate(static_cast<int>(i % 14));
            int device = static_cast<int>(rng.index(112));
            e.deviceId = data::deviceName(device);
            e.deviceModel = data::deviceModel(device);
            e.location = app.locations[rng.index(7)].name;
            e.weather = weathers[w];
            e.drift = w != 0 ? rng.bernoulli(0.7) : rng.bernoulli(0.2);

            int label =
                static_cast<int>(rng.index(app.domain.numClasses()));
            std::vector<double> x = app.domain.sample(label, rng);
            if (w != 0) {
                x = corruptor.apply(
                    x, data::weatherCorruption(
                           static_cast<data::Weather>(w)),
                    3, rng);
            }
            rca::AttributeSet context({
                {driftlog::columns::kWeather, driftlog::Value(e.weather)},
                {driftlog::columns::kLocation,
                 driftlog::Value(e.location)},
                {driftlog::columns::kDeviceId,
                 driftlog::Value(e.deviceId)},
                {driftlog::columns::kDeviceModel,
                 driftlog::Value(e.deviceModel)},
            });
            cloud.ingest(e, sim::Upload{x, context, e.drift});
        }
        sim::CycleResult cycle = cloud.runCycle(base.bnPatch());
        double total = cycle.rcaSeconds + cycle.adaptSeconds;
        t.addRow({std::to_string(run),
                  std::to_string(entries),
                  std::to_string(cycle.analysis.rootCauses.size()),
                  TablePrinter::num(cycle.rcaSeconds, 3),
                  TablePrinter::num(cycle.adaptSeconds, 3),
                  TablePrinter::pct(total > 0.0
                                        ? cycle.rcaSeconds / total
                                        : 0.0)});
    }
    std::printf("%s", t.toString().c_str());
    std::printf("paper analog: RCA 46s / 50min cycle = 1.5%% share\n");
    return 0;
}
