/**
 * @file
 * Figure 7: per-drift-type accuracy of by-cause adaptation vs
 * adapt-all vs no-adapt, with (a) matching and (b) mismatched
 * severities.
 *
 * Paper result: by-cause wins consistently on every drift type;
 * adapt-all sometimes degrades below the non-adapted model. Overall
 * (a): 61.5% vs 42.4% vs 38.7%; (b): 54.3% vs 42.0% vs 39.6%.
 */
#include "bench_util.h"

#include "adapt/tent.h"
#include "common/table_printer.h"

using namespace nazar;

namespace {

void
runSetting(const char *label, const nn::Classifier &base,
           const std::vector<bench::Partition> &partitions)
{
    adapt::TentAdapter tent{adapt::AdaptConfig{}};

    // One model adapted on everything for the adapt-all baseline.
    data::Dataset mixed;
    for (const auto &p : partitions)
        mixed.append(p.adaptSet);
    nn::Classifier adapt_all = base.clone();
    tent.adapt(adapt_all, mixed.x);

    TablePrinter t({"drift type", "no-adapt", "adapt-all", "by-cause"});
    double sums[3] = {0.0, 0.0, 0.0};
    for (const auto &p : partitions) {
        nn::Classifier frozen = base.clone();
        double no_adapt =
            frozen.accuracy(p.testSet.x, p.testSet.labels);
        double all =
            adapt_all.accuracy(p.testSet.x, p.testSet.labels);
        nn::Classifier by_cause = base.clone();
        tent.adapt(by_cause, p.adaptSet.x);
        double cause =
            by_cause.accuracy(p.testSet.x, p.testSet.labels);
        t.addRow({toString(p.type), TablePrinter::pct(no_adapt),
                  TablePrinter::pct(all), TablePrinter::pct(cause)});
        sums[0] += no_adapt;
        sums[1] += all;
        sums[2] += cause;
    }
    double n = static_cast<double>(partitions.size());
    t.addRow({"AVERAGE", TablePrinter::pct(sums[0] / n),
              TablePrinter::pct(sums[1] / n),
              TablePrinter::pct(sums[2] / n)});
    std::printf("%s\n%s\n", label, t.toString().c_str());
}

} // namespace

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Figure 7",
                       "per-type accuracy of adaptation strategies");
    bench::printPaperNote("(a) averages: by-cause 61.5%, adapt-all "
                          "42.4%, no-adapt 38.7%; (b): 54.3% / 42.0% / "
                          "39.6%");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier base = bench::trainBase(app);

    auto same = bench::makePartitions(app, 6, 6, 3,
                                      bench::SeverityMode::kFixed, 91);
    runSetting("(a) matching severity:", base, same);

    auto mismatched = bench::makePartitions(
        app, 6, 6, 3, bench::SeverityMode::kNormal, 92);
    runSetting("(b) mismatched severity (test ~N(3,1)):", base,
               mismatched);
    return 0;
}
