/**
 * @file
 * Ablation: the on-device MSP threshold inside the end-to-end loop.
 *
 * Fig 5a sweeps the threshold for *offline* detection F1; this
 * ablation sweeps it inside the full loop, where the threshold also
 * controls the drift-log confidence levels that root-cause analysis
 * mines. Expectation: very low thresholds miss drift (few causes
 * found); very high thresholds flood the log with false positives
 * (clean attributes start passing the confidence bar); a broad middle
 * band — containing the paper's 0.9 default — works.
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Ablation",
                       "on-device MSP threshold in the full loop");
    bench::printPaperNote("the paper fixes 0.9 (Fig 5a shows offline "
                          "F1 is flat near it)");

    data::AppSpec app = data::makeCityscapesApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);
    nn::Classifier base =
        bench::trainBase(app, nn::Architecture::kResNet18);

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 8;
    config.workload.days = kSimPeriodDays;
    config.workload.seed = 77;
    config.seed = 78;

    TablePrinter t({"threshold", "accuracy (all)",
                    "accuracy (drifted)", "causes found",
                    "mean detection rate"});
    for (double threshold : {0.30, 0.50, 0.70, 0.90, 0.99}) {
        config.mspThreshold = threshold;
        sim::RunResult r =
            sim::Runner(app, weather, config, &base).run();
        size_t causes = 0;
        double rate = 0.0;
        for (const auto &w : r.windows) {
            causes += w.rootCauses;
            rate += w.detectionRate();
        }
        t.addRow({TablePrinter::num(threshold, 2),
                  TablePrinter::pct(r.avgAccuracyAll()),
                  TablePrinter::pct(r.avgAccuracyDrifted()),
                  std::to_string(causes),
                  TablePrinter::num(
                      rate / static_cast<double>(r.windows.size()),
                      2)});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
