/**
 * @file
 * §3.2.1 cost argument: GOdin "triples the inference time", which is
 * why Nazar uses the MSP threshold on devices. This bench measures the
 * per-inference latency of MSP detection (a free by-product of
 * inference) vs GOdin (forward + backward + forward) on the same
 * model, plus their detection quality on the standard half-drifted
 * stream.
 */
#include <chrono>

#include "bench_util.h"

#include "common/table_printer.h"
#include "detect/godin.h"
#include "detect/metrics.h"
#include "detect/scores.h"
#include "nn/loss.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("§3.2.1 (GOdin cost)",
                       "per-inference latency: MSP vs GOdin");
    bench::printPaperNote("GOdin needs backprop + a second forward "
                          "pass, tripling inference time — unsuitable "
                          "for on-device detection");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier model = bench::trainBase(app);
    Rng rng(131);
    data::Corruptor corruptor(app.domain.featureDim());
    auto types = data::allCorruptionTypes();

    // Evaluation stream: half clean / half drifted.
    data::DatasetBuilder builder;
    std::vector<bool> truth;
    auto src = app.domain.makeBalancedDataset(20, rng);
    for (size_t r = 0; r < src.x.rows(); ++r) {
        if (r % 2 == 0) {
            builder.add(src.x.rowVec(r), src.labels[r]);
            truth.push_back(false);
        } else {
            builder.add(corruptor.apply(src.x.rowVec(r),
                                        types[(r / 2) % types.size()],
                                        3, rng),
                        src.labels[r]);
            truth.push_back(true);
        }
    }
    data::Dataset d = builder.build();

    detect::MspDetector msp(0.9);
    detect::GOdinDetector godin(model, 0.75);

    // ---- latency --------------------------------------------------------
    auto time_per_inference = [&](auto &&detect_one) {
        auto t0 = std::chrono::steady_clock::now();
        size_t flagged = 0;
        for (size_t r = 0; r < d.x.rows(); ++r)
            flagged += detect_one(d.x.rowVec(r)) ? 1 : 0;
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        return std::pair<double, size_t>(
            secs / static_cast<double>(d.x.rows()), flagged);
    };

    auto [msp_time, msp_flags] =
        time_per_inference([&](const std::vector<double> &x) {
            nn::Matrix z = model.logits(nn::Matrix::rowVector(x));
            return msp.isDrift(z.rowVec(0));
        });
    auto [godin_time, godin_flags] =
        time_per_inference([&](const std::vector<double> &x) {
            return godin.isDrift(x);
        });

    // ---- quality ----------------------------------------------------------
    ConfusionCounts msp_counts, godin_counts;
    for (size_t r = 0; r < d.x.rows(); ++r) {
        nn::Matrix z = model.logits(nn::Matrix::rowVector(d.x.rowVec(r)));
        msp_counts.add(msp.isDrift(z.rowVec(0)), truth[r]);
        godin_counts.add(godin.isDrift(d.x.rowVec(r)), truth[r]);
    }

    TablePrinter t({"detector", "time/inference (us)", "relative",
                    "F1"});
    t.addRow({"msp@0.9 (inference + threshold)",
              TablePrinter::num(msp_time * 1e6, 1), "1.0x",
              TablePrinter::num(msp_counts.f1())});
    t.addRow({"godin (fwd + bwd + fwd)",
              TablePrinter::num(godin_time * 1e6, 1),
              TablePrinter::num(godin_time / msp_time, 1) + "x",
              TablePrinter::num(godin_counts.f1())});
    std::printf("%s", t.toString().c_str());
    std::printf("paper: ~3x (one backward + one extra forward on top "
                "of the inference the app runs anyway)\n");
    return 0;
}
