/**
 * @file
 * Figures 9a/9b: Animals end-to-end workload under higher drift
 * severity (S=3 vs S=5), accuracy on all data and drifted data.
 *
 * Paper result: all strategies degrade as severity rises, but Nazar
 * stays ahead, and its margin over adapt-all *grows* with severity
 * (+3.8-10.4%).
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Figures 9a/9b",
                       "Animals e2e accuracy vs drift severity");
    bench::printPaperNote("higher severity hurts everyone; Nazar's "
                          "margin over adapt-all grows (+3.8-10.4%)");

    data::AppSpec app = data::makeAnimalsApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);
    nn::Classifier base = bench::trainBase(app);

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet50;
    config.windows = 8;
    config.workload.days = kSimPeriodDays;
    config.workload.seed = 87;
    config.seed = 88;

    TablePrinter fig9a({"severity", "no-adapt", "adapt-all", "nazar"});
    TablePrinter fig9b({"severity", "no-adapt", "adapt-all", "nazar"});
    for (int severity : {3, 5}) {
        config.workload.severity = severity;
        auto outcomes = bench::runStrategies(app, weather, config, base);
        std::string s = "S" + std::to_string(severity);
        fig9a.addRow({s,
                      TablePrinter::pct(outcomes.noAdapt.avgAccuracyAll()),
                      TablePrinter::pct(
                          outcomes.adaptAll.avgAccuracyAll()),
                      TablePrinter::pct(outcomes.nazar.avgAccuracyAll())});
        fig9b.addRow({s,
                      TablePrinter::pct(
                          outcomes.noAdapt.avgAccuracyDrifted()),
                      TablePrinter::pct(
                          outcomes.adaptAll.avgAccuracyDrifted()),
                      TablePrinter::pct(
                          outcomes.nazar.avgAccuracyDrifted())});
    }
    std::printf("Fig 9a — all data:\n%s\n", fig9a.toString().c_str());
    std::printf("Fig 9b — drifted data:\n%s",
                fig9b.toString().c_str());
    return 0;
}
