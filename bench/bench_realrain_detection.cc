/**
 * @file
 * §5.3 "Detection under real weather conditions": the mixed
 * Cityscapes + RID (real rain, different camera domain) set.
 *
 * Paper result: model accuracy drops from 85.2% (clean Cityscapes) to
 * 76.7% (RID); the detector peaks at F1 ~0.67 at threshold 0.95 with
 * precision 0.55 / recall 0.88 — noisier than on synthetic drift but
 * still useful.
 */
#include "bench_util.h"

#include "common/table_printer.h"
#include "data/real_rain.h"
#include "detect/metrics.h"
#include "detect/scores.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("§5.3 (real rain)",
                       "detection on the Cityscapes+RID mixed set");
    bench::printPaperNote("accuracy 85.2% -> 76.7% switching to RID; "
                          "peak F1 ~0.67 @ threshold 0.95 "
                          "(P 0.55, R 0.88)");

    data::AppSpec app = data::makeCityscapesApp();
    nn::Classifier model = bench::trainBase(app);
    data::RealRainSet set = data::makeRealRainSet(app, 2000);

    // Accuracy on the clean vs RID halves.
    std::vector<size_t> clean_idx, rid_idx;
    for (size_t i = 0; i < set.isRid.size(); ++i)
        (set.isRid[i] ? rid_idx : clean_idx).push_back(i);
    auto clean = set.data.subset(clean_idx);
    auto rid = set.data.subset(rid_idx);
    std::printf("accuracy: clean %.1f%%, RID %.1f%% "
                "(paper: 85.2%% -> 76.7%%)\n\n",
                100.0 * model.accuracy(clean.x, clean.labels),
                100.0 * model.accuracy(rid.x, rid.labels));

    nn::Matrix logits = model.logits(set.data.x);
    std::vector<bool> truth(set.isRid.begin(), set.isRid.end());

    TablePrinter t({"threshold", "F1", "precision", "recall"});
    double best_f1 = 0.0, best_thr = 0.0;
    for (double thr :
         {0.50, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99}) {
        detect::MspDetector det(thr);
        auto c = detect::evaluateDetector(det, logits, truth);
        t.addRow({TablePrinter::num(thr, 2), TablePrinter::num(c.f1()),
                  TablePrinter::num(c.precision()),
                  TablePrinter::num(c.recall())});
        if (c.f1() > best_f1) {
            best_f1 = c.f1();
            best_thr = thr;
        }
    }
    std::printf("%s", t.toString().c_str());
    std::printf("peak F1 %.3f at threshold %.2f\n", best_f1, best_thr);
    return 0;
}
