/**
 * @file
 * Extension experiment (paper §6 future work): federated by-cause
 * adaptation vs the cloud path.
 *
 * Compares three ways to produce a by-cause BN patch for a weather
 * drift affecting a device cohort:
 *   - cloud TENT on pooled uploads (the paper's design; raw inputs
 *     leave the devices),
 *   - federated rounds (raw data stays on devices; only BN patches
 *     travel),
 *   - no adaptation.
 * Reports accuracy on held-out drifted data, the fraction of the
 * centralized gain federated recovers, and the bytes each approach
 * ships over the network.
 */
#include "bench_util.h"

#include "adapt/tent.h"
#include "common/table_printer.h"
#include "fed/federated.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Extension (§6)",
                       "federated vs cloud by-cause adaptation");
    bench::printPaperNote("future work in the paper; expectation: "
                          "federated recovers most of the centralized "
                          "gain while raw data never leaves devices");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier base = bench::trainBase(app);
    Rng rng(141);
    data::Corruptor corruptor(app.domain.featureDim());

    // A cohort of 16 devices, each with a handful of private snowy
    // samples; a held-out snowy test set.
    const int devices = 16;
    const size_t per_device = 24;
    std::vector<fed::DeviceShard> shards;
    for (int d = 0; d < devices; ++d) {
        data::DatasetBuilder builder;
        for (size_t i = 0; i < per_device; ++i) {
            int cls = static_cast<int>(
                rng.index(app.domain.numClasses()));
            builder.add(corruptor.apply(app.domain.sample(cls, rng),
                                        data::CorruptionType::kSnow, 3,
                                        rng),
                        cls);
        }
        shards.push_back({d, builder.build()});
    }
    data::DatasetBuilder test_builder;
    for (size_t c = 0; c < app.domain.numClasses(); ++c) {
        for (int i = 0; i < 10; ++i) {
            test_builder.add(
                corruptor.apply(app.domain.sample(static_cast<int>(c),
                                                  rng),
                                data::CorruptionType::kSnow, 3, rng),
                static_cast<int>(c));
        }
    }
    data::Dataset test = test_builder.build();

    // No adaptation.
    nn::Classifier frozen = base.clone();
    double no_adapt = frozen.accuracy(test.x, test.labels);

    // Cloud path: pool everything, TENT once.
    data::Dataset pooled;
    for (const auto &shard : shards)
        pooled.append(shard.samples);
    nn::Classifier central = base.clone();
    adapt::TentAdapter tent{adapt::AdaptConfig{}};
    tent.adapt(central, pooled.x);
    double central_acc = central.accuracy(test.x, test.labels);
    size_t central_bytes =
        pooled.size() * app.domain.featureDim() * sizeof(float);

    TablePrinter t({"approach", "accuracy", "gain vs no-adapt",
                    "bytes over network"});
    t.addRow({"no-adapt", TablePrinter::pct(no_adapt), "-", "0"});
    t.addRow({"cloud TENT (pooled uploads)",
              TablePrinter::pct(central_acc),
              TablePrinter::num(100.0 * (central_acc - no_adapt), 1) +
                  " pp",
              std::to_string(central_bytes) + " (raw inputs)"});

    for (int rounds : {1, 2, 4, 8}) {
        fed::FederatedConfig config;
        config.rounds = rounds;
        config.local.steps = 3;
        fed::FederatedResult result =
            fed::federatedAdapt(config, base, base.bnPatch(), shards);
        nn::Classifier fed_model = base.clone();
        fed_model.applyBnPatch(result.patch);
        double acc = fed_model.accuracy(test.x, test.labels);
        // Per round: every device downloads + uploads one BN patch.
        size_t bytes = static_cast<size_t>(rounds) * 2 *
                       result.participatingDevices *
                       result.patch.sizeBytes();
        t.addRow({"federated, " + std::to_string(rounds) + " round(s)",
                  TablePrinter::pct(acc),
                  TablePrinter::num(100.0 * (acc - no_adapt), 1) +
                      " pp",
                  std::to_string(bytes) + " (BN patches)"});
    }
    std::printf("%s", t.toString().c_str());
    std::printf("federated keeps raw inputs on-device and converges "
                "toward the cloud result with more rounds.\n");
    return 0;
}
