/**
 * @file
 * Ablation: device model-pool capacity (§3.4 consolidation).
 *
 * The paper caps on-device versions with LRU + consolidation but does
 * not sweep the cap. This ablation runs the Cityscapes e2e workload
 * with caps 1/2/3/unbounded. Expectation: with the full RCA pipeline
 * producing ~3 live weather causes, a cap of 3 should be free, while a
 * cap of 1 forces the single surviving version to serve every drift.
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Ablation", "device model-pool capacity");
    bench::printPaperNote("not swept in the paper; the paper's Fig 8c "
                          "shows ~3 live causes, so cap >= 3 should "
                          "cost nothing");

    data::AppSpec app = data::makeCityscapesApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);
    nn::Classifier base =
        bench::trainBase(app, nn::Architecture::kResNet18);

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 8;
    config.workload.days = kSimPeriodDays;
    config.workload.seed = 77;
    config.seed = 78;

    TablePrinter t({"pool capacity", "accuracy (all)",
                    "accuracy (drifted)", "final pool size"});
    for (size_t cap : {1u, 2u, 3u, 0u}) {
        config.poolCapacity = cap;
        sim::RunResult r =
            sim::Runner(app, weather, config, &base).run();
        t.addRow({cap == 0 ? "unbounded" : std::to_string(cap),
                  TablePrinter::pct(r.avgAccuracyAll()),
                  TablePrinter::pct(r.avgAccuracyDrifted()),
                  std::to_string(r.windows.back().poolSize)});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
