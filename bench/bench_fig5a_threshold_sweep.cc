/**
 * @file
 * Figure 5a: F1 of the MSP detector as a function of the threshold.
 *
 * Paper result: F1 rises steadily to ~0.73, is insensitive around the
 * default threshold 0.9, and declines afterwards.
 */
#include "bench_util.h"

#include "common/table_printer.h"
#include "detect/metrics.h"
#include "detect/scores.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Figure 5a", "F1 vs MSP threshold");
    bench::printPaperNote("F1 climbs to ~0.73, is stable around the "
                          "0.9 default, then decreases");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier model = bench::trainBase(app);
    Rng rng(41);
    data::Corruptor corruptor(app.domain.featureDim());
    auto types = data::allCorruptionTypes();

    // Half the stream clean, half evenly drifted across the 16 types.
    data::DatasetBuilder builder;
    std::vector<bool> truth;
    auto src = app.domain.makeBalancedDataset(50, rng);
    for (size_t r = 0; r < src.x.rows(); ++r) {
        if (r % 2 == 0) {
            builder.add(src.x.rowVec(r), src.labels[r]);
            truth.push_back(false);
        } else {
            builder.add(corruptor.apply(src.x.rowVec(r),
                                        types[(r / 2) % types.size()],
                                        3, rng),
                        src.labels[r]);
            truth.push_back(true);
        }
    }
    data::Dataset d = builder.build();
    nn::Matrix logits = model.logits(d.x);

    TablePrinter t({"threshold", "F1", "precision", "recall"});
    double best_f1 = 0.0, best_thr = 0.0;
    for (double thr : {0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80,
                       0.85, 0.90, 0.95, 0.99}) {
        detect::MspDetector det(thr);
        auto c = detect::evaluateDetector(det, logits, truth);
        t.addRow({TablePrinter::num(thr, 2), TablePrinter::num(c.f1()),
                  TablePrinter::num(c.precision()),
                  TablePrinter::num(c.recall())});
        if (c.f1() > best_f1) {
            best_f1 = c.f1();
            best_thr = thr;
        }
    }
    std::printf("%s", t.toString().c_str());
    std::printf("peak F1 %.3f at threshold %.2f (paper: ~0.73 near "
                "0.9)\n",
                best_f1, best_thr);
    return 0;
}
