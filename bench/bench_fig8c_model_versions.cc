/**
 * @file
 * Figure 8c + §5.7 "Benefit of set reduction and counterfactual
 * analysis": number of BN versions stored on devices per window for
 * FIM-only root-cause analysis vs the full Nazar pipeline, plus the
 * accuracy cost of the ablation.
 *
 * Paper result: with the full pipeline the version count stabilizes at
 * 3 from the second window; FIM-only accumulates many redundant
 * versions and costs 1.3-9.7% average accuracy.
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Figure 8c",
                       "BN versions per window: FIM-only vs Nazar");
    bench::printPaperNote("Nazar steadies at ~3 versions from window "
                          "2; FIM-only stores many more and loses "
                          "1.3-9.7% accuracy");

    data::AppSpec app = data::makeCityscapesApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);
    nn::Classifier base =
        bench::trainBase(app, nn::Architecture::kResNet18);

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 8;
    config.workload.days = kSimPeriodDays;
    config.workload.seed = 77;
    config.seed = 78;
    config.poolCapacity = 0; // uncapped, as in the paper's experiment

    config.cloud.analysisMode = rca::AnalysisMode::kFull;
    sim::RunResult full =
        sim::Runner(app, weather, config, &base).run();

    config.cloud.analysisMode = rca::AnalysisMode::kFimOnly;
    sim::RunResult fim_only =
        sim::Runner(app, weather, config, &base).run();

    TablePrinter t({"window", "versions (Nazar)", "versions (FIM only)",
                    "causes (Nazar)", "causes (FIM only)"});
    for (size_t w = 0; w < full.windows.size(); ++w) {
        t.addRow({std::to_string(w),
                  std::to_string(full.windows[w].poolSize),
                  std::to_string(fim_only.windows[w].poolSize),
                  std::to_string(full.windows[w].rootCauses),
                  std::to_string(fim_only.windows[w].rootCauses)});
    }
    std::printf("%s\n", t.toString().c_str());
    std::printf("average accuracy: Nazar %.1f%%, FIM-only %.1f%% "
                "(paper: FIM-only drops 1.3-9.7%%)\n",
                100.0 * full.avgAccuracyAll(),
                100.0 * fim_only.avgAccuracyAll());
    return 0;
}
