/**
 * @file
 * Figure 6: detection rate before vs after by-cause adaptation, with
 * (a) matching severity and (b) mismatched severity between the
 * adaptation and test sets.
 *
 * Paper result: after adapting, the detection rate on the matching
 * drift falls to roughly the clean-data level; when severities
 * mismatch, the rate stays elevated — so Nazar keeps re-detecting
 * causes it failed to fully adapt to.
 */
#include "bench_util.h"

#include "adapt/tent.h"
#include "common/table_printer.h"
#include "detect/metrics.h"
#include "detect/scores.h"

using namespace nazar;

namespace {

void
runSetting(const char *label, const nn::Classifier &base,
           const std::vector<bench::Partition> &partitions)
{
    detect::MspDetector detector(0.9);
    adapt::TentAdapter tent{adapt::AdaptConfig{}};

    TablePrinter t({"drift type", "rate before", "rate after"});
    double before_sum = 0.0, after_sum = 0.0;
    for (const auto &p : partitions) {
        nn::Classifier pre = base.clone();
        double before =
            detect::detectionRate(detector, pre.logits(p.testSet.x));
        nn::Classifier adapted = base.clone();
        tent.adapt(adapted, p.adaptSet.x);
        double after = detect::detectionRate(detector,
                                             adapted.logits(p.testSet.x));
        t.addRow({toString(p.type), TablePrinter::num(before, 2),
                  TablePrinter::num(after, 2)});
        if (p.type != data::CorruptionType::kNone) {
            before_sum += before;
            after_sum += after;
        }
    }
    std::printf("%s\n%s", label, t.toString().c_str());
    std::printf("mean over drift types: before %.2f -> after %.2f\n\n",
                before_sum / 16.0, after_sum / 16.0);
}

} // namespace

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Figure 6",
                       "detection rate before/after adaptation");
    bench::printPaperNote("(a) same severity: post-adaptation rate "
                          "drops to clean level; (b) mismatched "
                          "severity: rate stays high");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier base = bench::trainBase(app);

    auto same = bench::makePartitions(app, 6, 6, 3,
                                      bench::SeverityMode::kFixed, 81);
    runSetting("(a) matching severity (adapt S3, test S3):", base,
               same);

    auto mismatched = bench::makePartitions(
        app, 6, 6, 3, bench::SeverityMode::kNormal, 82);
    runSetting("(b) mismatched severity (adapt S3, test ~N(3,1)):",
               base, mismatched);
    return 0;
}
