/**
 * @file
 * Table 4: TENT and MEMO under by-cause vs adapt-all strategies on the
 * 17-partition Animals microbenchmark (16 drifts + clean).
 *
 * Paper result (average accuracy): no-adapt 38.7%; by-cause TENT
 * 61.5%; by-cause MEMO 42.3%; adapt-all TENT 42.4%; adapt-all MEMO
 * 30.3%. By-cause wins decisively; MEMO trails TENT; adapt-all MEMO
 * degrades below the non-adapted model.
 */
#include "bench_util.h"

#include "adapt/memo.h"
#include "adapt/tent.h"
#include "common/table_printer.h"

using namespace nazar;

namespace {

/** Mean accuracy of per-partition adapted models on their own tests. */
double
byCauseAccuracy(const nn::Classifier &base,
                const std::vector<bench::Partition> &partitions,
                const adapt::Adapter &adapter)
{
    double total = 0.0;
    for (const auto &p : partitions) {
        nn::Classifier model = base.clone();
        adapter.adapt(model, p.adaptSet.x);
        total += model.accuracy(p.testSet.x, p.testSet.labels);
    }
    return total / static_cast<double>(partitions.size());
}

/** Accuracy of one model adapted on the union of all partitions. */
double
adaptAllAccuracy(const nn::Classifier &base,
                 const std::vector<bench::Partition> &partitions,
                 const adapt::Adapter &adapter)
{
    data::Dataset mixed;
    for (const auto &p : partitions)
        mixed.append(p.adaptSet);
    nn::Classifier model = base.clone();
    adapter.adapt(model, mixed.x);
    double total = 0.0;
    for (const auto &p : partitions)
        total += model.accuracy(p.testSet.x, p.testSet.labels);
    return total / static_cast<double>(partitions.size());
}

double
noAdaptAccuracy(const nn::Classifier &base,
                const std::vector<bench::Partition> &partitions)
{
    nn::Classifier model = base.clone();
    double total = 0.0;
    for (const auto &p : partitions)
        total += model.accuracy(p.testSet.x, p.testSet.labels);
    return total / static_cast<double>(partitions.size());
}

} // namespace

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Table 4",
                       "by-cause vs adapt-all with TENT and MEMO");
    bench::printPaperNote("no-adapt 38.7 | by-cause TENT 61.5 | "
                          "by-cause MEMO 42.3 | adapt-all TENT 42.4 | "
                          "adapt-all MEMO 30.3 (%)");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier base = bench::trainBase(app);
    auto partitions = bench::makePartitions(
        app, /*per_class_adapt=*/6, /*per_class_test=*/6, 3,
        bench::SeverityMode::kFixed, 71);

    adapt::AdaptConfig tent_config;
    adapt::TentAdapter tent(tent_config);
    adapt::AdaptConfig memo_config;
    memo_config.steps = 10;
    memo_config.learningRate = 3e-3;
    memo_config.maxInputs = 96;
    adapt::MemoAdapter memo(memo_config);

    TablePrinter t({"method", "average accuracy", "paper"});
    t.addRow({"no-adapt",
              TablePrinter::pct(noAdaptAccuracy(base, partitions)),
              "38.7%"});
    t.addRow({"by-cause (TENT)",
              TablePrinter::pct(byCauseAccuracy(base, partitions, tent)),
              "61.5%"});
    t.addRow({"by-cause (MEMO)",
              TablePrinter::pct(byCauseAccuracy(base, partitions, memo)),
              "42.3%"});
    t.addRow({"adapt-all (TENT)",
              TablePrinter::pct(adaptAllAccuracy(base, partitions, tent)),
              "42.4%"});
    t.addRow({"adapt-all (MEMO)",
              TablePrinter::pct(adaptAllAccuracy(base, partitions, memo)),
              "30.3%"});
    std::printf("%s", t.toString().c_str());

    // §3.4 cross-cause experiment: a fog-adapted model on other drifts
    // and on clean data.
    const bench::Partition *fog = nullptr;
    const bench::Partition *clean = nullptr;
    for (const auto &p : partitions) {
        if (p.type == data::CorruptionType::kFog)
            fog = &p;
        if (p.type == data::CorruptionType::kNone)
            clean = &p;
    }
    nn::Classifier fog_model = base.clone();
    tent.adapt(fog_model, fog->adaptSet.x);
    nn::Classifier clean_model = base.clone();
    tent.adapt(clean_model, clean->adaptSet.x);

    double own = fog_model.accuracy(fog->testSet.x, fog->testSet.labels);
    double cross = 0.0;
    int cross_count = 0;
    for (const auto &p : partitions) {
        if (p.type == data::CorruptionType::kFog ||
            p.type == data::CorruptionType::kNone)
            continue;
        cross += fog_model.accuracy(p.testSet.x, p.testSet.labels);
        ++cross_count;
    }
    cross /= cross_count;
    double fog_on_clean =
        fog_model.accuracy(clean->testSet.x, clean->testSet.labels);
    double clean_on_clean =
        clean_model.accuracy(clean->testSet.x, clean->testSet.labels);

    std::printf("\ncross-cause check (paper: fog-adapted model gets "
                "66.7%% on fog, 16.4%% on other drifts, 26.8%% on "
                "clean; clean-adapted model 74.6%% on clean):\n");
    std::printf("  fog model on fog:     %.1f%%\n", 100.0 * own);
    std::printf("  fog model on others:  %.1f%%\n", 100.0 * cross);
    std::printf("  fog model on clean:   %.1f%%\n",
                100.0 * fog_on_clean);
    std::printf("  clean model on clean: %.1f%%\n",
                100.0 * clean_on_clean);
    return 0;
}
