/**
 * @file
 * Table 1: comparison of drift-detection algorithm families, plus a
 * measured addendum supporting §3.2.1's claim that the score-threshold
 * variants (MSP / entropy / energy) behave almost identically.
 */
#include "bench_util.h"

#include "common/table_printer.h"
#include "detect/godin.h"
#include "detect/mahalanobis.h"
#include "detect/metrics.h"
#include "detect/scores.h"
#include "detect/ssl.h"
#include "nn/loss.h"

using namespace nazar;

namespace {

/** Static requirements table (paper Table 1). */
void
printStaticTable()
{
    TablePrinter t({"requirement", "Threshold", "KS-test", "OE", "Odin",
                    "MD", "SSL", "CSI", "GOdin"});
    t.addRow({"no secondary dataset", "yes", "yes", "no", "no", "no",
              "yes", "yes", "yes"});
    t.addRow({"no secondary model", "yes", "yes", "yes", "yes", "yes",
              "no", "no", "yes"});
    t.addRow({"no backpropagation", "yes", "yes", "yes", "no", "yes",
              "yes", "yes", "no"});
    t.addRow({"no batching", "yes", "no", "yes", "yes", "yes", "yes",
              "yes", "yes"});
    std::printf("%s", t.toString().c_str());
    std::printf("-> only the Threshold method satisfies all four "
                "on-device constraints (Nazar's choice).\n\n");
}

} // namespace

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Table 1", "drift-detector family comparison");
    bench::printPaperNote(
        "threshold on MSP is the only method with no secondary "
        "dataset/model, no backprop, and no batching; score variants "
        "(entropy, energy) perform almost identically to MSP");

    printStaticTable();

    // Measured addendum: rank agreement of the three score functions
    // on a half-clean / half-drifted stream.
    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier model = bench::trainBase(app);
    Rng rng(21);
    data::Corruptor corruptor(app.domain.featureDim());
    auto types = data::allCorruptionTypes();

    data::DatasetBuilder builder;
    std::vector<bool> truth;
    auto src = app.domain.makeBalancedDataset(30, rng);
    for (size_t r = 0; r < src.x.rows(); ++r) {
        if (r % 2 == 0) {
            builder.add(src.x.rowVec(r), src.labels[r]);
            truth.push_back(false);
        } else {
            builder.add(corruptor.apply(src.x.rowVec(r),
                                        types[(r / 2) % types.size()],
                                        3, rng),
                        src.labels[r]);
            truth.push_back(true);
        }
    }
    data::Dataset d = builder.build();
    nn::Matrix logits = model.logits(d.x);

    // Calibrate entropy/energy thresholds to flag the same fraction as
    // MSP@0.9, then compare F1.
    detect::MspDetector msp(0.9);
    double flag_rate = detect::detectionRate(msp, logits);

    auto calibrated_threshold = [&](auto score_fn) {
        std::vector<double> scores;
        for (size_t r = 0; r < logits.rows(); ++r)
            scores.push_back(score_fn(logits.rowVec(r)));
        std::sort(scores.begin(), scores.end());
        size_t k = static_cast<size_t>(flag_rate *
                                       static_cast<double>(scores.size()));
        return scores[std::min(k, scores.size() - 1)];
    };

    detect::EntropyDetector probe_entropy(1.0);
    detect::EnergyDetector probe_energy(0.0);
    double entropy_thr = -calibrated_threshold(
        [&](const std::vector<double> &row) {
            return probe_entropy.score(row);
        });
    double energy_thr = -calibrated_threshold(
        [&](const std::vector<double> &row) {
            return probe_energy.score(row);
        });
    detect::EntropyDetector entropy(entropy_thr);
    detect::EnergyDetector energy(energy_thr);

    TablePrinter t({"detector", "F1", "precision", "recall",
                    "requirements"});
    auto add = [&](const detect::Detector &det, const char *req) {
        auto c = detect::evaluateDetector(det, logits, truth);
        t.addRow({det.name(), TablePrinter::num(c.f1()),
                  TablePrinter::num(c.precision()),
                  TablePrinter::num(c.recall()), req});
    };
    add(msp, "none (Nazar's choice)");
    add(entropy, "none");
    add(energy, "none");

    // Score-based families that violate the on-device constraints —
    // implemented so the comparison is measured, not just tabulated.
    // Each scorer gets the same rate-matched threshold treatment.
    auto add_scored = [&](const std::string &name, auto &&score_fn,
                          const char *req) {
        // Calibrate to MSP's flag rate.
        std::vector<double> scores;
        for (size_t r = 0; r < d.x.rows(); ++r)
            scores.push_back(score_fn(d.x.rowVec(r)));
        std::vector<double> sorted = scores;
        std::sort(sorted.begin(), sorted.end());
        size_t k = static_cast<size_t>(
            flag_rate * static_cast<double>(sorted.size()));
        double thr = sorted[std::min(k, sorted.size() - 1)];
        ConfusionCounts c;
        for (size_t r = 0; r < scores.size(); ++r)
            c.add(scores[r] < thr, truth[r]);
        t.addRow({name, TablePrinter::num(c.f1()),
                  TablePrinter::num(c.precision()),
                  TablePrinter::num(c.recall()), req});
    };

    // Mahalanobis: needs training-time access to the data.
    Rng fit_rng(61);
    auto fit = app.domain.makeBalancedDataset(40, fit_rng);
    detect::MahalanobisDetector md(fit.x, fit.labels, 100.0);
    add_scored("mahalanobis",
               [&](const std::vector<double> &x) {
                   return md.score(x);
               },
               "secondary dataset");

    // SSL: needs a co-trained secondary model.
    detect::SslDetector ssl(fit.x, 0.5, 63, 20);
    add_scored("ssl-aux",
               [&](const std::vector<double> &x) {
                   return ssl.score(x);
               },
               "secondary model");

    // GOdin: needs backprop + an extra forward (3x inference cost).
    detect::GOdinDetector godin(model, 0.75);
    add_scored("godin",
               [&](const std::vector<double> &x) {
                   return godin.score(x);
               },
               "backpropagation");

    // Outlier Exposure: retrains the model with a drift dataset.
    Rng oe_rng(67);
    data::DatasetBuilder oe_builder;
    auto oe_src = app.domain.makeBalancedDataset(10, oe_rng);
    auto oe_types = data::allCorruptionTypes();
    for (size_t r = 0; r < oe_src.x.rows(); ++r)
        oe_builder.add(corruptor.apply(oe_src.x.rowVec(r),
                                       oe_types[r % oe_types.size()],
                                       4, oe_rng),
                       -1);
    data::Dataset oe_outliers = oe_builder.build();
    Rng oe_train_rng(5);
    auto oe_train =
        app.domain.makeBalancedDataset(app.trainPerClass, oe_train_rng);
    nn::Classifier oe_model(nn::Architecture::kResNet50,
                            app.domain.featureDim(),
                            app.domain.numClasses(), 5);
    nn::TrainConfig oe_tc;
    oe_tc.epochs = 40;
    oe_model.trainWithOutlierExposure(oe_train.x, oe_train.labels,
                                      oe_outliers.x, oe_tc);
    add_scored("oe (msp on OE-trained model)",
               [&](const std::vector<double> &x) {
                   return nn::maxSoftmax(
                       oe_model.logits(nn::Matrix::rowVector(x)))[0];
               },
               "secondary dataset + retraining");

    std::printf("measured (rate-matched thresholds):\n%s",
                t.toString().c_str());
    return 0;
}
