/**
 * @file
 * Figures 8a, 8b, 8d: the Cityscapes end-to-end workload.
 *
 *  - 8a: average accuracy on all data (last 7 of 8 windows) for the
 *    three strategies across ResNet18/34/50. Paper: Nazar highest with
 *    the smallest std; +10.1-19.4% over adapt-all.
 *  - 8b: average accuracy on drifted data only. Paper: even larger
 *    gaps (up to +49.5% on ResNet18) because small models generalize
 *    poorly over mixed distributions.
 *  - 8d: cumulative accuracy trace over the 8 windows. Paper: Nazar
 *    improves steadily; adapt-all dips mid-deployment.
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::MetricsExport metrics(argc, argv);
    bench::TraceExport trace(argc, argv);
    bench::printHeader("Figures 8a/8b/8d",
                       "Cityscapes end-to-end workload");
    bench::printPaperNote("8a: Nazar +10.1-19.4% over adapt-all on "
                          "all data; 8b: up to +49.5% on drifted data; "
                          "8d: Nazar's cumulative accuracy climbs "
                          "steadily");

    data::AppSpec app = data::makeCityscapesApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);

    sim::RunnerConfig config;
    config.windows = 8;
    config.workload.days = kSimPeriodDays;
    config.workload.seed = 77;
    config.seed = 78;

    TablePrinter fig8a({"model", "no-adapt", "adapt-all",
                        "nazar", "nazar std"});
    TablePrinter fig8b({"model", "no-adapt", "adapt-all", "nazar"});
    std::vector<std::pair<std::string, bench::StrategyOutcomes>> traces;

    for (nn::Architecture arch :
         {nn::Architecture::kResNet18, nn::Architecture::kResNet34,
          nn::Architecture::kResNet50}) {
        config.arch = arch;
        nn::Classifier base = bench::trainBase(app, arch);
        auto outcomes = bench::runStrategies(app, weather, config, base);

        fig8a.addRow({nn::toString(arch),
                      TablePrinter::pct(outcomes.noAdapt.avgAccuracyAll()),
                      TablePrinter::pct(
                          outcomes.adaptAll.avgAccuracyAll()),
                      TablePrinter::pct(outcomes.nazar.avgAccuracyAll()),
                      TablePrinter::pct(
                          outcomes.nazar.stddevAccuracyAll())});
        fig8b.addRow({nn::toString(arch),
                      TablePrinter::pct(
                          outcomes.noAdapt.avgAccuracyDrifted()),
                      TablePrinter::pct(
                          outcomes.adaptAll.avgAccuracyDrifted()),
                      TablePrinter::pct(
                          outcomes.nazar.avgAccuracyDrifted())});
        traces.push_back({nn::toString(arch), std::move(outcomes)});
    }

    std::printf("Fig 8a — average accuracy, all data (last 7 "
                "windows):\n%s\n",
                fig8a.toString().c_str());
    std::printf("Fig 8b — average accuracy, drifted data only:\n%s\n",
                fig8b.toString().c_str());

    // Fig 8d: cumulative trace for ResNet50.
    const auto &r50 = traces.back().second;
    TablePrinter fig8d({"window", "nazar (all)", "adapt-all (all)",
                        "no-adapt (all)", "nazar (drifted)",
                        "adapt-all (drifted)"});
    auto nz_all = r50.nazar.cumulativeAccuracyAll();
    auto aa_all = r50.adaptAll.cumulativeAccuracyAll();
    auto na_all = r50.noAdapt.cumulativeAccuracyAll();
    auto nz_dr = r50.nazar.cumulativeAccuracyDrifted();
    auto aa_dr = r50.adaptAll.cumulativeAccuracyDrifted();
    for (size_t w = 0; w < nz_all.size(); ++w) {
        fig8d.addRow({std::to_string(w),
                      TablePrinter::pct(nz_all[w]),
                      TablePrinter::pct(aa_all[w]),
                      TablePrinter::pct(na_all[w]),
                      TablePrinter::pct(nz_dr[w]),
                      TablePrinter::pct(aa_dr[w])});
    }
    std::printf("Fig 8d — cumulative accuracy per window "
                "(ResNet50):\n%s",
                fig8d.toString().c_str());
    return 0;
}
