/**
 * @file
 * Table 5: Fowlkes-Mallows score of the root-cause analysis pipeline
 * across 8 weather-combination scenarios, ablating the pipeline
 * stages (FIM / +set reduction / +counterfactual analysis).
 *
 * Paper result: the full pipeline is optimal (FMS 1.0) in every
 * scenario except "snow", and never worse than the ablations.
 */
#include <map>
#include <set>

#include "bench_util.h"

#include "common/table_printer.h"
#include "data/stream.h"
#include "detect/scores.h"
#include "rca/analyzer.h"
#include "rca/fms.h"
#include "sim/device.h"

using namespace nazar;

namespace {

/** One scenario: the subset of weather kinds that truly cause drift. */
struct Scenario
{
    std::string name;
    std::set<data::Weather> active;
};

/**
 * Stream 14 days of the Animals workload with only the scenario's
 * weather kinds applying corruptions; log detector verdicts; run RCA;
 * return the FMS between ground-truth grouping and the grouping the
 * discovered causes induce.
 */
std::map<std::string, double>
runScenario(const Scenario &scenario, const data::AppSpec &app,
            const data::WeatherModel &weather, nn::Classifier &model)
{
    // Generate the 14-day stream, then selectively de-corrupt events
    // whose weather is not active in this scenario.
    data::WorkloadConfig config;
    config.days = 14;
    config.seed = 97;
    data::WorkloadGenerator generator(app, weather, config);
    auto events = generator.generate();

    Rng rng(1234);
    for (auto &ev : events) {
        if (ev.trueDrift && !scenario.active.count(ev.weather)) {
            // Regenerate the clean features for the inactive weather.
            ev.features = app.domain.sample(ev.label, rng);
            ev.trueDrift = false;
            ev.corruption = data::CorruptionType::kNone;
            ev.severity = 0;
        }
    }

    // Run detection and build the drift log.
    detect::MspDetector detector(0.9);
    driftlog::DriftLog log;
    std::vector<rca::AttributeSet> contexts;
    for (const auto &ev : events) {
        sim::Device device(ev.deviceId,
                           app.locations[static_cast<size_t>(
                               ev.locationId)].name,
                           0);
        nn::Matrix logits =
            model.logits(nn::Matrix::rowVector(ev.features));
        sim::InferenceOutcome out;
        out.predicted = static_cast<int>(logits.argmaxRow(0));
        out.driftFlag = detector.isDrift(logits.rowVec(0));
        log.add(device.makeLogEntry(ev, out));
        contexts.push_back(device.contextFor(ev));
    }

    // Ground-truth clusters: one per active weather kind, plus clean.
    std::vector<int> truth;
    truth.reserve(events.size());
    for (const auto &ev : events)
        truth.push_back(ev.trueDrift ? static_cast<int>(ev.weather) : -1);

    rca::RcaConfig rca_config;
    rca_config.attributeColumns =
        driftlog::DriftLog::defaultAttributeColumns();
    rca::Analyzer analyzer(rca_config);

    std::map<std::string, double> results;
    for (rca::AnalysisMode mode :
         {rca::AnalysisMode::kFimOnly,
          rca::AnalysisMode::kFimSetReduction,
          rca::AnalysisMode::kFull}) {
        auto analysis = analyzer.analyze(log.table(), mode);
        // Predicted clusters: first matching cause in rank order, or
        // "clean" (-1).
        std::vector<int> predicted;
        predicted.reserve(events.size());
        for (const auto &context : contexts) {
            int group = -1;
            for (size_t c = 0; c < analysis.rootCauses.size(); ++c) {
                if (analysis.rootCauses[c].attrs.isSubsetOf(context)) {
                    group = static_cast<int>(c);
                    break;
                }
            }
            predicted.push_back(group);
        }
        results[toString(mode)] = rca::fowlkesMallows(truth, predicted);
    }
    return results;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::MetricsExport metrics(argc, argv);
    bench::printHeader("Table 5",
                       "RCA Fowlkes-Mallows score across scenarios");
    bench::printPaperNote("full pipeline (FIM+SR+CF) dominates and is "
                          "optimal everywhere except 'snow'");

    data::AppSpec app = data::makeAnimalsApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);
    nn::Classifier model = bench::trainBase(app);

    using W = data::Weather;
    std::vector<Scenario> scenarios = {
        {"none", {}},
        {"rain", {W::kRain}},
        {"snow", {W::kSnow}},
        {"fog", {W::kFog}},
        {"fog+snow", {W::kFog, W::kSnow}},
        {"fog+rain", {W::kFog, W::kRain}},
        {"snow+rain", {W::kSnow, W::kRain}},
        {"snow+rain+fog", {W::kSnow, W::kRain, W::kFog}},
    };

    TablePrinter t({"scenario", "FIM", "FIM+SR", "FIM+SR+CF"});
    for (const auto &scenario : scenarios) {
        auto results = runScenario(scenario, app, weather, model);
        t.addRow({scenario.name,
                  TablePrinter::num(results["fim"]),
                  TablePrinter::num(results["fim+set-reduction"]),
                  TablePrinter::num(results["fim+set-reduction+cf"])});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
