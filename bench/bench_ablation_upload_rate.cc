/**
 * @file
 * Ablation: raw-input upload sample rate (§3.1 "the device samples a
 * percentage of the actual input data").
 *
 * More uploads mean more by-cause adaptation data at more bandwidth /
 * privacy cost. Expectation: accuracy saturates once each cause
 * gathers enough samples per window; very low rates starve adaptation
 * and converge to no-adapt behaviour.
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Ablation", "upload sample rate");
    bench::printPaperNote("not swept in the paper; the prototype "
                          "uploads a sampled fraction of inputs");

    data::AppSpec app = data::makeCityscapesApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);
    nn::Classifier base =
        bench::trainBase(app, nn::Architecture::kResNet18);

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 8;
    config.workload.days = kSimPeriodDays;
    config.workload.seed = 77;
    config.seed = 78;

    TablePrinter t({"upload rate", "accuracy (all)",
                    "accuracy (drifted)", "versions produced"});
    for (double rate : {0.02, 0.05, 0.10, 0.25, 0.50}) {
        config.uploadSampleRate = rate;
        sim::RunResult r =
            sim::Runner(app, weather, config, &base).run();
        size_t versions = 0;
        for (const auto &w : r.windows)
            versions += w.newVersions;
        t.addRow({TablePrinter::pct(rate, 0),
                  TablePrinter::pct(r.avgAccuracyAll()),
                  TablePrinter::pct(r.avgAccuracyDrifted()),
                  std::to_string(versions)});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
