/**
 * @file
 * Figure 5b: per-class accuracy variability of the Animals model.
 *
 * Paper result: average accuracy varies widely across classes (39.2%
 * to 98.2%) despite balanced training data — the root of the
 * class-skew drift source.
 */
#include <algorithm>

#include "bench_util.h"

#include "common/stats.h"
#include "common/table_printer.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Figure 5b", "per-class accuracy variability");
    bench::printPaperNote("per-class accuracy spans ~39%-98% with "
                          "balanced training data");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier model = bench::trainBase(app);
    Rng rng(51);
    auto test = app.domain.makeBalancedDataset(60, rng);

    std::vector<std::pair<double, int>> per_class;
    for (size_t c = 0; c < app.domain.numClasses(); ++c) {
        auto idx = test.indicesOfClass(static_cast<int>(c));
        auto sub = test.subset(idx);
        per_class.push_back(
            {model.accuracy(sub.x, sub.labels), static_cast<int>(c)});
    }
    std::sort(per_class.begin(), per_class.end());

    TablePrinter t({"class", "accuracy", "class noise"});
    for (const auto &[acc, cls] : per_class) {
        t.addRow({app.classNames[static_cast<size_t>(cls)],
                  TablePrinter::pct(acc),
                  TablePrinter::num(app.domain.classNoise(cls), 2)});
    }
    std::printf("%s", t.toString().c_str());

    std::vector<double> accs;
    for (const auto &[acc, cls] : per_class)
        accs.push_back(acc);
    std::printf("range: %.1f%% .. %.1f%% (paper: 39.2%% .. 98.2%%), "
                "mean %.1f%%, stddev %.1f%%\n",
                100.0 * accs.front(), 100.0 * accs.back(),
                100.0 * mean(accs), 100.0 * stddev(accs));
    return 0;
}
