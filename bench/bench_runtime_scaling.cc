/**
 * @file
 * Runtime scaling benchmark: matmul and end-to-end window throughput
 * at 1/2/4/8 threads, reported as JSON. Seeds the BENCH_*.json
 * trajectory — each row compares against the 1-thread baseline, so
 * the speedup column is the headline number for the parallel runtime.
 *
 * Usage: bench_runtime_scaling [--quick]
 *   --quick shrinks the workload (CI smoke run).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "obs/export.h"
#include "data/apps.h"
#include "nn/matrix.h"
#include "runtime/thread_pool.h"
#include "sim/runner.h"

namespace {

using nazar::Rng;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Multiply-accumulate throughput of the row-partitioned matmul. */
double
matmulGflops(size_t dim, int reps)
{
    Rng rng(7);
    nazar::nn::Matrix a =
        nazar::nn::Matrix::randomNormal(dim, dim, 1.0, rng);
    nazar::nn::Matrix b =
        nazar::nn::Matrix::randomNormal(dim, dim, 1.0, rng);
    double sink = 0.0;
    auto start = Clock::now();
    for (int i = 0; i < reps; ++i)
        sink += a.matmul(b)(0, 0);
    double secs = secondsSince(start);
    volatile double consume = sink;
    (void)consume;
    double flops = 2.0 * static_cast<double>(dim) * dim * dim * reps;
    return flops / secs / 1e9;
}

/** Events per second through the full Nazar loop on a small fleet. */
double
e2eEventsPerSec(bool quick)
{
    nazar::data::AppSpec app = nazar::data::makeAnimalsApp(13, 8);
    nazar::data::WeatherModel weather(app.locations, 21, 2020);
    nazar::sim::RunnerConfig config;
    config.arch = nazar::nn::Architecture::kResNet18;
    config.strategy = nazar::sim::Strategy::kNazar;
    config.windows = 3;
    config.workload.days = 21;
    config.workload.devicesPerLocation = quick ? 3 : 8;
    config.workload.imagesPerDevicePerDay = quick ? 3.0 : 8.0;
    config.train.epochs = quick ? 10 : 20;
    config.cloud.minAdaptSamples = 16;
    config.uploadSampleRate = 0.5;
    config.seed = 17;
    nazar::sim::Runner runner(app, weather, config);
    auto start = Clock::now();
    nazar::sim::RunResult result = runner.run();
    double secs = secondsSince(start);
    size_t events = 0;
    for (const auto &w : result.windows)
        events += w.events;
    return static_cast<double>(events) / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string metrics_out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0)
            metrics_out = argv[i] + 14;
    }

    nazar::setLogLevel(nazar::LogLevel::kSilent);

    const size_t dim = quick ? 192 : 384;
    const int reps = quick ? 4 : 8;
    const std::vector<size_t> thread_counts = {1, 2, 4, 8};

    struct Row
    {
        size_t threads;
        double gflops;
        double eventsPerSec;
    };
    std::vector<Row> rows;
    for (size_t threads : thread_counts) {
        nazar::runtime::setThreads(threads);
        Row row;
        row.threads = threads;
        row.gflops = matmulGflops(dim, reps);
        row.eventsPerSec = e2eEventsPerSec(quick);
        rows.push_back(row);
    }
    nazar::runtime::setThreads(0);

    std::printf("{\n");
    std::printf("  \"bench\": \"runtime_scaling\",\n");
    std::printf("  \"matmul_dim\": %zu,\n", dim);
    std::printf("  \"hardware_concurrency\": %u,\n",
                std::thread::hardware_concurrency());
    std::printf("  %s,\n", nazar::bench::hostMetaJson().c_str());
    std::printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf("    {\"threads\": %zu, \"matmul_gflops\": %.3f, "
                    "\"matmul_speedup\": %.2f, "
                    "\"e2e_events_per_sec\": %.1f, "
                    "\"e2e_speedup\": %.2f}%s\n",
                    r.threads, r.gflops, r.gflops / rows[0].gflops,
                    r.eventsPerSec, r.eventsPerSec / rows[0].eventsPerSec,
                    i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    if (!metrics_out.empty())
        nazar::obs::writeMetricsFile(metrics_out);
    return 0;
}
