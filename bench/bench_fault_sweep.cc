/**
 * @file
 * Fault-sweep benchmark: end-to-end Nazar accuracy under an
 * increasingly unreliable device↔cloud channel, reported as JSON.
 * Seeds BENCH_fault_sweep.json.
 *
 * Drop rate sweeps {0, 0.05, 0.1, 0.25, 0.5}; the remaining fault
 * knobs are derived from it so one number describes how hostile the
 * network is. The headline claim: accuracy under drift degrades
 * *smoothly* as loss rises — retries, dedup and
 * adapt-on-what-arrived avoid a cliff — and every faulted point keeps
 * completing all windows over the identical event stream.
 *
 * Usage: bench_fault_sweep [--quick] [--metrics-out=<path>]
 *   --quick shrinks the workload (CI smoke run).
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "net/fault.h"
#include "obs/metrics.h"

namespace {

using namespace nazar;

/** All fault knobs derived from a single headline drop rate. */
net::FaultConfig
faultsAt(double drop)
{
    net::FaultConfig f;
    f.dropProb = drop;
    f.dupProb = std::min(0.2, drop / 2.0);
    f.delayProb = drop / 2.0;
    f.pushDropProb = drop / 2.0;
    f.offlineProb = drop / 4.0;
    f.crashProb = drop / 8.0;
    f.queueCapacity = 64;
    f.seed = 0xfa0175ULL;
    return f;
}

struct Row
{
    double drop;
    double accAll;
    double accDrifted;
    size_t staleDeviceWindows;
    size_t skippedCauses;
    uint64_t retries;
    uint64_t dedupHits;
    uint64_t shed;
    uint64_t crashLost;
    uint64_t gaveUp;
    uint64_t pushDropped;
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    bench::MetricsExport metrics(argc, argv);
    bench::QuietLogs quiet;
    setLogLevel(LogLevel::kSilent);

    data::AppSpec app = data::makeAnimalsApp(13, 8);
    data::WeatherModel weather(app.locations, 21, 2020);

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = quick ? 3 : 5;
    config.workload.days = 21;
    config.workload.devicesPerLocation = quick ? 3 : 6;
    config.workload.imagesPerDevicePerDay = quick ? 3.0 : 6.0;
    config.train.epochs = 20;
    config.cloud.minAdaptSamples = 16;
    config.uploadSampleRate = 0.5;
    config.seed = 17;

    // One shared pretrained base: every sweep point sees the same
    // model and the same event stream; only the channel differs.
    nn::Classifier base =
        bench::trainBase(app, config.arch, config.seed,
                         config.train.epochs);

    const std::vector<double> drops = {0.0, 0.05, 0.1, 0.25, 0.5};
    std::vector<Row> rows;
    auto &registry = obs::Registry::global();
    for (double drop : drops) {
        registry.reset(); // per-point counters
        config.faults = faultsAt(drop);
        sim::RunResult result =
            sim::Runner(app, weather, config, &base).run();
        Row row;
        row.drop = drop;
        row.accAll = result.avgAccuracyAll(0);
        row.accDrifted = result.avgAccuracyDrifted(0);
        row.staleDeviceWindows = 0;
        row.skippedCauses = 0;
        for (const auto &w : result.windows) {
            row.staleDeviceWindows += w.staleDevices;
            row.skippedCauses += w.skippedCauses;
        }
        row.retries = registry.counter("net.retries").value();
        row.dedupHits = registry.counter("net.dedup_hits").value();
        row.shed = registry.counter("net.shed").value();
        row.crashLost = registry.counter("net.crash_lost").value();
        row.gaveUp = registry.counter("net.gave_up").value();
        row.pushDropped = registry.counter("net.push_dropped").value();
        rows.push_back(row);
    }

    std::printf("{\n");
    std::printf("  \"bench\": \"fault_sweep\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  %s,\n", bench::hostMetaJson().c_str());
    std::printf("  \"windows\": %zu,\n", config.windows);
    std::printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"drop\": %.2f, \"avgAccuracyAll\": %.4f, "
            "\"avgAccuracyDrifted\": %.4f, \"staleDeviceWindows\": %zu, "
            "\"skippedCauses\": %zu, "
            "\"retries\": %llu, \"dedupHits\": %llu, \"shed\": %llu, "
            "\"crashLost\": %llu, "
            "\"gaveUp\": %llu, \"pushDropped\": %llu}%s\n",
            r.drop, r.accAll, r.accDrifted, r.staleDeviceWindows,
            r.skippedCauses,
            static_cast<unsigned long long>(r.retries),
            static_cast<unsigned long long>(r.dedupHits),
            static_cast<unsigned long long>(r.shed),
            static_cast<unsigned long long>(r.crashLost),
            static_cast<unsigned long long>(r.gaveUp),
            static_cast<unsigned long long>(r.pushDropped),
            i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
