/**
 * @file
 * Figure 5c: effect of class skew (Zipf alpha) on accuracy and
 * detection rate.
 *
 * Paper result: raising alpha from 0 to 2 drops total accuracy from
 * 78.7% to 43.8% while the detection rate climbs from 0.35 to 0.72 —
 * class skew is a detectable drift source.
 */
#include "bench_util.h"

#include "common/table_printer.h"
#include "common/zipf.h"
#include "detect/metrics.h"
#include "detect/scores.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Figure 5c",
                       "accuracy & detection rate vs class skew");
    bench::printPaperNote("alpha 0 -> 2: accuracy 78.7% -> 43.8%, "
                          "detection rate 0.35 -> 0.72");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier model = bench::trainBase(app);
    detect::MspDetector detector(0.9);

    // Rank classes by (ascending) model accuracy so that skew samples
    // concentrate on the hardest classes, as the paper's locations do
    // when their species mix is unfavourable.
    Rng rng(61);
    auto probe = app.domain.makeBalancedDataset(40, rng);
    std::vector<std::pair<double, int>> ranked;
    for (size_t c = 0; c < app.domain.numClasses(); ++c) {
        auto sub = probe.subset(probe.indicesOfClass(static_cast<int>(c)));
        ranked.push_back(
            {model.accuracy(sub.x, sub.labels), static_cast<int>(c)});
    }
    std::sort(ranked.begin(), ranked.end());

    TablePrinter t({"alpha", "accuracy", "detection rate"});
    for (double alpha : {0.0, 0.5, 1.0, 1.5, 2.0}) {
        ZipfSampler zipf(app.domain.numClasses(), alpha);
        data::DatasetBuilder builder;
        const size_t n = 4000;
        for (size_t i = 0; i < n; ++i) {
            int cls = ranked[zipf.sample(rng)].second;
            builder.add(app.domain.sample(cls, rng), cls);
        }
        data::Dataset d = builder.build();
        nn::Matrix logits = model.logits(d.x);
        std::vector<int> pred(d.size());
        size_t correct = 0;
        for (size_t r = 0; r < logits.rows(); ++r)
            correct += static_cast<int>(logits.argmaxRow(r)) ==
                               d.labels[r]
                           ? 1
                           : 0;
        double acc = static_cast<double>(correct) / n;
        double rate = detect::detectionRate(detector, logits);
        t.addRow({TablePrinter::num(alpha, 1), TablePrinter::pct(acc),
                  TablePrinter::num(rate, 2)});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
