/**
 * @file
 * Figure 2: F1 of the KS-test detector vs. batch size, compared with
 * the single-sample MSP threshold at 0.9.
 *
 * Paper result: KS-test slightly beats the threshold above batch size
 * 4 but loses below it; since batching device results raises thorny
 * windowing questions, Nazar adopts the threshold.
 */
#include "bench_util.h"

#include "common/table_printer.h"
#include "detect/metrics.h"
#include "nn/loss.h"
#include "detect/scores.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Figure 2",
                       "KS-test F1 vs batch size (vs MSP@0.9)");
    bench::printPaperNote("KS-test overtakes the MSP threshold for "
                          "batch sizes > 4; both land around F1 ~0.7");

    data::AppSpec app = data::makeAnimalsApp();
    nn::Classifier model = bench::trainBase(app);
    Rng rng(31);
    data::Corruptor corruptor(app.domain.featureDim());
    auto types = data::allCorruptionTypes();

    // Reference sample of clean MSP scores for the KS test (validation
    // data under the deployed model).
    auto val = app.domain.makeBalancedDataset(30, rng);
    std::vector<double> reference = model.mspScores(val.x);

    // Evaluation stream: alternating same-condition *blocks* so that a
    // batch is either all-clean or all-drifted (the KS test, like the
    // paper's setup, judges condition-homogeneous batches).
    constexpr size_t kBlock = 64;
    constexpr size_t kBlocks = 60;
    data::DatasetBuilder builder;
    std::vector<bool> truth;
    size_t type_cursor = 0;
    for (size_t b = 0; b < kBlocks; ++b) {
        bool drifted = b % 2 == 1;
        auto src = app.domain.makeBalancedDataset(2, rng); // 80 rows
        for (size_t r = 0; r < kBlock; ++r) {
            if (drifted) {
                builder.add(
                    corruptor.apply(src.x.rowVec(r),
                                    types[type_cursor % types.size()],
                                    3, rng),
                    src.labels[r]);
            } else {
                builder.add(src.x.rowVec(r), src.labels[r]);
            }
            truth.push_back(drifted);
        }
        if (drifted)
            ++type_cursor;
    }
    data::Dataset d = builder.build();
    nn::Matrix logits = model.logits(d.x);
    std::vector<double> scores = nn::maxSoftmax(logits);

    // MSP threshold baseline (batch size 1).
    detect::MspDetector msp(0.9);
    auto msp_counts = detect::evaluateDetector(msp, logits, truth);

    TablePrinter t({"batch size", "detector", "F1"});
    t.addRow({"1", "threshold (MSP@0.9)",
              TablePrinter::num(msp_counts.f1())});

    detect::KsTestDetector ks(reference, 0.05);
    for (size_t batch : {2u, 4u, 8u, 16u, 32u, 64u}) {
        auto counts =
            detect::evaluateKsDetector(ks, scores, truth, batch);
        t.addRow({std::to_string(batch), "ks-test",
                  TablePrinter::num(counts.f1())});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
