/**
 * @file
 * §5.7 "Adaptation frequency": 4 analysis windows vs the default 8 on
 * the Cityscapes end-to-end workload.
 *
 * Paper result: halving the adaptation frequency keeps results
 * consistent; average accuracy across the three models improves by
 * 1.2-3.8% (longer windows gather more diverse adaptation data).
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("§5.7 (adaptation frequency)",
                       "4 vs 8 analysis windows, Cityscapes e2e");
    bench::printPaperNote("4 windows improves average accuracy by "
                          "1.2-3.8% over 8");

    data::AppSpec app = data::makeCityscapesApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);

    sim::RunnerConfig config;
    config.strategy = sim::Strategy::kNazar;
    config.workload.days = kSimPeriodDays;
    config.workload.seed = 77;
    config.seed = 78;

    TablePrinter t({"model", "8 windows", "4 windows", "delta"});
    for (nn::Architecture arch :
         {nn::Architecture::kResNet18, nn::Architecture::kResNet34,
          nn::Architecture::kResNet50}) {
        config.arch = arch;
        nn::Classifier base = bench::trainBase(app, arch);

        config.windows = 8;
        double acc8 = sim::Runner(app, weather, config, &base)
                          .run()
                          .avgAccuracyAll();
        config.windows = 4;
        double acc4 = sim::Runner(app, weather, config, &base)
                          .run()
                          .avgAccuracyAll();
        t.addRow({nn::toString(arch), TablePrinter::pct(acc8),
                  TablePrinter::pct(acc4),
                  TablePrinter::num(100.0 * (acc4 - acc8), 1) + " pp"});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
