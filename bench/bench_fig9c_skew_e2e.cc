/**
 * @file
 * Figure 9c: Animals end-to-end workload under class skew (Zipf
 * alpha = 1).
 *
 * Paper result: with 8 windows at severity 3 Nazar fails to beat
 * adapt-all (class skew is not an attribute it can diagnose, and the
 * skew-narrowed adaptation sets overfit); with 4 windows (more varied
 * adaptation data) Nazar wins again (+0.9%), and at severity 5 Nazar
 * wins even at 8 windows.
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::MetricsExport metrics(argc, argv);
    bench::TraceExport trace(argc, argv);
    bench::printHeader("Figure 9c",
                       "Animals e2e with class skew (alpha = 1)");
    bench::printPaperNote("S3/8 windows: Nazar <= adapt-all; S3/4 "
                          "windows: Nazar wins (+0.9%); S5/8 windows: "
                          "Nazar wins");

    data::AppSpec app = data::makeAnimalsApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);
    nn::Classifier base = bench::trainBase(app);

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet50;
    config.workload.days = kSimPeriodDays;
    config.workload.zipfAlpha = 1.0;
    config.workload.seed = 97;
    config.seed = 98;

    struct Setting
    {
        int severity;
        int windows;
    };
    TablePrinter t({"setting", "no-adapt", "adapt-all", "nazar"});
    for (Setting s : {Setting{3, 8}, Setting{3, 4}, Setting{5, 8}}) {
        config.workload.severity = s.severity;
        config.windows = s.windows;
        auto outcomes = bench::runStrategies(app, weather, config, base);
        t.addRow({"S" + std::to_string(s.severity) + ", " +
                      std::to_string(s.windows) + " windows",
                  TablePrinter::pct(outcomes.noAdapt.avgAccuracyAll()),
                  TablePrinter::pct(outcomes.adaptAll.avgAccuracyAll()),
                  TablePrinter::pct(outcomes.nazar.avgAccuracyAll())});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
