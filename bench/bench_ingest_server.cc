/**
 * @file
 * Ingest-server throughput benchmark: group commit vs per-record
 * flushing over a real TCP socket, reported as JSON. Seeds
 * BENCH_ingest_server.json.
 *
 * Each point stands up a persisted Cloud (WAL in fdatasync mode, so a
 * sync is a real kernel round-trip, not a stdio flush) behind the
 * IngestServer, then drives it with N chaos-free load-generator
 * clients. Per-record mode pays one WAL sync per message; group
 * commit batches whatever is queued and pays one sync per batch. The
 * headline claim: with concurrent clients the committer's queue is
 * never empty, so batches grow and group commit pulls ahead — the
 * classic group-commit win — while recovered state stays identical
 * (tested in test_server.cc, byte-level in test_persist.cc).
 *
 * Each result row also carries the server-side per-stage latency
 * breakdown (queue wait, batch encode, WAL sync, ack write) read back
 * from the obs histograms, so the group-commit win is attributable to
 * a stage, not just visible in the end-to-end number.
 *
 * A final "recovery" point measures fault-tolerant ingest: the crash
 * injector kills the server mid-load while reconnect-enabled clients
 * stream, a harness rebuilds the Cloud from the state dir and
 * restarts the server on the same port, and the row reports the
 * kill-to-first-accepted-ack latency (client-observed outage) plus
 * the rebuild time and retransmit volume.
 *
 * Usage: bench_ingest_server [--quick] [--metrics-out=<path>]
 *                            [--trace-out=<trace.json>]
 *   --quick shrinks the workload (CI smoke run).
 */
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "net/ingest_client.h"
#include "server/ingest_server.h"
#include "server/load_gen.h"
#include "sim/cloud.h"

namespace {

using namespace nazar;

struct Row
{
    bool groupCommit;
    size_t clients;
    double eventsPerSec;
    double p50Ms;
    double p99Ms;
    size_t messages;
    size_t batches;
    std::vector<server::StageStat> stages;
};

Row
runPoint(bool group, size_t clients, size_t events_per_client)
{
    // Each point gets a fresh registry so its stage histograms are not
    // polluted by the previous point's samples.
    obs::Registry::global().reset();
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("nazar_bench_ingest_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    nn::Classifier base(nn::Architecture::kResNet18, 8, 4, 1);
    sim::CloudConfig config;
    config.persist.dir = dir.string();
    config.persist.sync = persist::SyncMode::kFdatasync;
    sim::Cloud cloud(config, base);
    server::ServerConfig sc;
    sc.groupCommit = group;
    server::IngestServer server(cloud, sc);
    server.start();

    server::LoadConfig load;
    load.port = server.port();
    load.clients = clients;
    load.eventsPerClient = events_per_client;
    server::LoadStats stats = server::runLoad(load);
    server.stop();
    NAZAR_CHECK(stats.reconciled, "benchmark run failed to reconcile");

    Row row;
    row.groupCommit = group;
    row.clients = clients;
    row.eventsPerSec = stats.eventsPerSec;
    row.p50Ms = stats.p50Ms;
    row.p99Ms = stats.p99Ms;
    row.messages = stats.sent;
    row.batches = server.stats().batches;
    row.stages = stats.stages;
    std::filesystem::remove_all(dir);
    return row;
}

/** The fault-tolerance point: measured crash–restart recovery. */
struct RecoveryRow
{
    size_t clients = 0;
    size_t eventsPerClient = 0;
    /** Client-observed outage: SIGKILL-equivalent crash to the first
     *  accepted ack on a resumed connection. */
    double killToFirstAckMs = 0.0;
    /** Server-side share of the outage: Cloud rebuild from the state
     *  dir + same-port listener restart. */
    double rebuildMs = 0.0;
    uint64_t reconnects = 0;
    uint64_t resent = 0;
    uint64_t resumedLanded = 0;
    uint64_t accepted = 0;
    bool reconciled = false;
};

RecoveryRow
runRecoveryPoint(size_t clients, size_t events_per_client)
{
    obs::Registry::global().reset();
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("nazar_bench_recover_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    nn::Classifier base(nn::Architecture::kResNet18, 8, 4, 1);
    sim::CloudConfig config;
    config.persist.dir = dir.string();
    // kFlush (the default): the fault model here is a process kill,
    // not a power cut, and the recovery row should measure replay and
    // reconnect cost rather than per-record fdatasync throughput.
    // Per-record commits take 2 injector hits each, so arming at
    // clients*events fires deterministically halfway through the load.
    config.persist.crashAtHit =
        static_cast<uint64_t>(clients * events_per_client);
    auto cloud = std::make_unique<sim::Cloud>(config, base);
    server::ServerConfig sc;
    sc.groupCommit = false;
    auto server =
        std::make_unique<server::IngestServer>(*cloud, sc);
    server->start();
    const uint16_t port = server->port();

    using Clock = std::chrono::steady_clock;
    std::atomic<bool> crashed{false};
    Clock::time_point crash_time; // written before `crashed` release
    std::mutex first_mutex;
    double first_ack_ms = -1.0;

    net::ReconnectPolicy policy;
    policy.enabled = true;
    policy.maxAttempts = 400;
    policy.backoffBaseMs = 1.0;
    policy.backoffCapMs = 20.0;

    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> reconnects{0};
    std::atomic<uint64_t> resent{0};
    std::atomic<uint64_t> resumed_landed{0};
    std::atomic<bool> ok{true};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            try {
                net::IngestClient client(
                    port, {}, "bench-recover-" + std::to_string(c),
                    policy);
                bool sampled = false;
                client.setAckObserver([&](const net::WireAck &a) {
                    // First accepted ack on a resumed connection:
                    // pre-crash acks can't qualify (reconnects == 0
                    // until the resume handshake lands), and resume
                    // pass-1 credits never reach the observer.
                    if (sampled || !a.accepted ||
                        client.stats().reconnects == 0 ||
                        !crashed.load(std::memory_order_acquire))
                        return;
                    sampled = true;
                    double ms =
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - crash_time)
                            .count();
                    std::lock_guard<std::mutex> lock(first_mutex);
                    if (first_ack_ms < 0.0 || ms < first_ack_ms)
                        first_ack_ms = ms;
                });
                for (size_t e = 0; e < events_per_client; ++e) {
                    net::WireIngest m;
                    m.device = 2000 + static_cast<int64_t>(c);
                    m.seq = e + 1;
                    m.entry.time = SimDate(
                        static_cast<int>(e / 288),
                        static_cast<int>(e % 288) * 300);
                    m.entry.deviceId =
                        "bench-recover-" + std::to_string(c);
                    m.entry.location = "park";
                    m.entry.modelVersion = 1;
                    client.sendIngest(m);
                }
                client.bye();
                accepted += client.stats().acksAccepted;
                reconnects += client.stats().reconnects;
                resent += client.stats().resent;
                resumed_landed += client.stats().resumedLanded;
                if (client.stats().acksAccepted !=
                    client.stats().sent)
                    ok = false;
            } catch (const NazarError &) {
                ok = false;
            }
        });
    }

    // The supervisor: wait for the injected crash, rebuild the Cloud
    // from the state dir, restart the listener on the same port.
    NAZAR_CHECK(server->waitCrashed(std::chrono::seconds(60)),
                "recovery bench: armed crash never fired");
    crash_time = Clock::now();
    crashed.store(true, std::memory_order_release);
    server->stop();
    server.reset();
    cloud.reset(); // release the WAL before re-opening the dir
    sim::CloudConfig recovered = config;
    recovered.persist.crashAtHit = 0;
    cloud = std::make_unique<sim::Cloud>(recovered, base);
    server::ServerConfig rc;
    rc.groupCommit = false;
    rc.port = port;
    server = std::make_unique<server::IngestServer>(*cloud, rc);
    server->start();
    double rebuild_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - crash_time)
                            .count();

    for (auto &t : threads)
        t.join();
    server->stop();

    RecoveryRow row;
    row.clients = clients;
    row.eventsPerClient = events_per_client;
    {
        std::lock_guard<std::mutex> lock(first_mutex);
        row.killToFirstAckMs = first_ack_ms;
    }
    row.rebuildMs = rebuild_ms;
    row.reconnects = reconnects;
    row.resent = resent;
    row.resumedLanded = resumed_landed;
    row.accepted = accepted;
    row.reconciled =
        ok && cloud->totalIngested() ==
                  static_cast<size_t>(accepted.load());
    NAZAR_CHECK(row.reconciled,
                "recovery bench failed to reconcile");
    server.reset();
    cloud.reset();
    std::filesystem::remove_all(dir);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    bench::MetricsExport metrics(argc, argv);
    bench::TraceExport trace(argc, argv);
    bench::QuietLogs quiet;
    setLogLevel(LogLevel::kSilent);

    const size_t events_per_client = quick ? 250 : 1500;
    const std::vector<size_t> client_counts =
        quick ? std::vector<size_t>{1, 4}
              : std::vector<size_t>{1, 2, 4, 8};

    std::vector<Row> rows;
    for (bool group : {false, true})
        for (size_t clients : client_counts)
            rows.push_back(runPoint(group, clients,
                                    events_per_client));
    const size_t recovery_events = quick ? 600 : 2000;
    RecoveryRow recovery = runRecoveryPoint(4, recovery_events);

    std::printf("{\n");
    std::printf("  \"bench\": \"ingest_server\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  \"eventsPerClient\": %zu,\n", events_per_client);
    std::printf("  \"syncMode\": \"fdatasync\",\n");
    std::printf("  %s,\n", bench::hostMetaJson("fdatasync").c_str());
    std::printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"groupCommit\": %s, \"clients\": %zu, "
            "\"eventsPerSec\": %.0f, \"p50Ms\": %.3f, "
            "\"p99Ms\": %.3f, \"messages\": %zu, \"batches\": %zu,\n",
            r.groupCommit ? "true" : "false", r.clients,
            r.eventsPerSec, r.p50Ms, r.p99Ms, r.messages, r.batches);
        std::printf("     \"stages\": [");
        for (size_t s = 0; s < r.stages.size(); ++s) {
            const server::StageStat &st = r.stages[s];
            std::printf("%s\n      {\"stage\": \"%s\", "
                        "\"count\": %llu, \"p50Ms\": %.4f, "
                        "\"p99Ms\": %.4f, \"meanMs\": %.4f}",
                        s == 0 ? "" : ",", st.name.c_str(),
                        static_cast<unsigned long long>(st.count),
                        st.p50Ms, st.p99Ms, st.meanMs);
        }
        std::printf("]}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"recovery\": {\"clients\": %zu, "
        "\"eventsPerClient\": %zu, \"killToFirstAckMs\": %.3f, "
        "\"rebuildMs\": %.3f, \"reconnects\": %llu, "
        "\"resent\": %llu, \"resumedLanded\": %llu, "
        "\"accepted\": %llu, \"reconciled\": %s}\n",
        recovery.clients, recovery.eventsPerClient,
        recovery.killToFirstAckMs, recovery.rebuildMs,
        static_cast<unsigned long long>(recovery.reconnects),
        static_cast<unsigned long long>(recovery.resent),
        static_cast<unsigned long long>(recovery.resumedLanded),
        static_cast<unsigned long long>(recovery.accepted),
        recovery.reconciled ? "true" : "false");
    std::printf("}\n");
    return 0;
}
