/**
 * @file
 * Ingest-server throughput benchmark: group commit vs per-record
 * flushing over a real TCP socket, reported as JSON. Seeds
 * BENCH_ingest_server.json.
 *
 * Each point stands up a persisted Cloud (WAL in fdatasync mode, so a
 * sync is a real kernel round-trip, not a stdio flush) behind the
 * IngestServer, then drives it with N chaos-free load-generator
 * clients. Per-record mode pays one WAL sync per message; group
 * commit batches whatever is queued and pays one sync per batch. The
 * headline claim: with concurrent clients the committer's queue is
 * never empty, so batches grow and group commit pulls ahead — the
 * classic group-commit win — while recovered state stays identical
 * (tested in test_server.cc, byte-level in test_persist.cc).
 *
 * Each result row also carries the server-side per-stage latency
 * breakdown (queue wait, batch encode, WAL sync, ack write) read back
 * from the obs histograms, so the group-commit win is attributable to
 * a stage, not just visible in the end-to-end number.
 *
 * Usage: bench_ingest_server [--quick] [--metrics-out=<path>]
 *                            [--trace-out=<trace.json>]
 *   --quick shrinks the workload (CI smoke run).
 */
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/error.h"
#include "server/ingest_server.h"
#include "server/load_gen.h"
#include "sim/cloud.h"

namespace {

using namespace nazar;

struct Row
{
    bool groupCommit;
    size_t clients;
    double eventsPerSec;
    double p50Ms;
    double p99Ms;
    size_t messages;
    size_t batches;
    std::vector<server::StageStat> stages;
};

Row
runPoint(bool group, size_t clients, size_t events_per_client)
{
    // Each point gets a fresh registry so its stage histograms are not
    // polluted by the previous point's samples.
    obs::Registry::global().reset();
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("nazar_bench_ingest_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    nn::Classifier base(nn::Architecture::kResNet18, 8, 4, 1);
    sim::CloudConfig config;
    config.persist.dir = dir.string();
    config.persist.sync = persist::SyncMode::kFdatasync;
    sim::Cloud cloud(config, base);
    server::ServerConfig sc;
    sc.groupCommit = group;
    server::IngestServer server(cloud, sc);
    server.start();

    server::LoadConfig load;
    load.port = server.port();
    load.clients = clients;
    load.eventsPerClient = events_per_client;
    server::LoadStats stats = server::runLoad(load);
    server.stop();
    NAZAR_CHECK(stats.reconciled, "benchmark run failed to reconcile");

    Row row;
    row.groupCommit = group;
    row.clients = clients;
    row.eventsPerSec = stats.eventsPerSec;
    row.p50Ms = stats.p50Ms;
    row.p99Ms = stats.p99Ms;
    row.messages = stats.sent;
    row.batches = server.stats().batches;
    row.stages = stats.stages;
    std::filesystem::remove_all(dir);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    bench::MetricsExport metrics(argc, argv);
    bench::TraceExport trace(argc, argv);
    bench::QuietLogs quiet;
    setLogLevel(LogLevel::kSilent);

    const size_t events_per_client = quick ? 250 : 1500;
    const std::vector<size_t> client_counts =
        quick ? std::vector<size_t>{1, 4}
              : std::vector<size_t>{1, 2, 4, 8};

    std::vector<Row> rows;
    for (bool group : {false, true})
        for (size_t clients : client_counts)
            rows.push_back(runPoint(group, clients,
                                    events_per_client));

    std::printf("{\n");
    std::printf("  \"bench\": \"ingest_server\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  \"eventsPerClient\": %zu,\n", events_per_client);
    std::printf("  \"syncMode\": \"fdatasync\",\n");
    std::printf("  %s,\n", bench::hostMetaJson("fdatasync").c_str());
    std::printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"groupCommit\": %s, \"clients\": %zu, "
            "\"eventsPerSec\": %.0f, \"p50Ms\": %.3f, "
            "\"p99Ms\": %.3f, \"messages\": %zu, \"batches\": %zu,\n",
            r.groupCommit ? "true" : "false", r.clients,
            r.eventsPerSec, r.p50Ms, r.p99Ms, r.messages, r.batches);
        std::printf("     \"stages\": [");
        for (size_t s = 0; s < r.stages.size(); ++s) {
            const server::StageStat &st = r.stages[s];
            std::printf("%s\n      {\"stage\": \"%s\", "
                        "\"count\": %llu, \"p50Ms\": %.4f, "
                        "\"p99Ms\": %.4f, \"meanMs\": %.4f}",
                        s == 0 ? "" : ",", st.name.c_str(),
                        static_cast<unsigned long long>(st.count),
                        st.p50Ms, st.p99Ms, st.meanMs);
        }
        std::printf("]}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
