/**
 * @file
 * Figure 9d: runtime of the root-cause analysis as a function of the
 * drift-log size (google-benchmark), plus a thread sweep.
 *
 * Paper result: runtime is completely linear in the number of rows —
 * the FIM pass is linear and set reduction prunes the candidate set
 * before the counterfactual stage.
 *
 * Usage:
 *   bench_fig9d_rca_scaling [google-benchmark flags]
 *     Default mode: the row-scaling sweep (complexity fit).
 *   bench_fig9d_rca_scaling --sweep [--quick]
 *     Thread sweep: Analyzer::analyze wall clock at 1/2/4/8 threads on
 *     a fixed log, reported as JSON (seeds BENCH_rca_scaling.json).
 *     The report also carries a dictionary-encoding axis: the FIM pass
 *     with uint32 id probes (Fim::mine) vs the retained
 *     Value-comparing reference (Fim::mineReference) at one thread.
 *     --quick shrinks the log (CI smoke run).
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "driftlog/drift_log.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rca/analyzer.h"
#include "rca/fim.h"
#include "runtime/thread_pool.h"

using namespace nazar;

namespace {

/** Build a synthetic drift log with fleet-realistic cardinalities. */
driftlog::DriftLog
makeLog(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    const char *weathers[] = {"clear-day", "rain", "snow", "fog"};
    const char *locations[] = {"new_york", "tibet", "beijing",
                               "new_south_wales", "united_kingdom",
                               "quebec", "sao_paulo"};
    driftlog::DriftLog log;
    for (size_t i = 0; i < rows; ++i) {
        driftlog::DriftLogEntry e;
        e.time = SimDate(static_cast<int>(i % 112));
        int device = static_cast<int>(rng.index(112));
        e.deviceId = "android_" + std::to_string(device);
        e.deviceModel = "model_" + std::to_string(device % 4);
        e.location = locations[rng.index(7)];
        size_t w = rng.index(4);
        e.weather = weathers[w];
        // Weather drifts are true causes; the rest is FP noise.
        e.drift = w != 0 ? rng.bernoulli(0.7) : rng.bernoulli(0.2);
        log.add(e);
    }
    return log;
}

void
BM_RootCauseAnalysis(benchmark::State &state)
{
    size_t rows = static_cast<size_t>(state.range(0));
    driftlog::DriftLog log = makeLog(rows, 123);
    rca::RcaConfig config;
    config.attributeColumns =
        driftlog::DriftLog::defaultAttributeColumns();
    rca::Analyzer analyzer(config);

    for (auto _ : state) {
        auto result = analyzer.analyze(log.table());
        benchmark::DoNotOptimize(result.rootCauses.size());
    }
    state.SetComplexityN(state.range(0));
    state.counters["rows"] = static_cast<double>(rows);
}

/** Best-of-reps wall clock of one full analyze() in milliseconds. */
double
analyzeMillis(const rca::Analyzer &analyzer, const driftlog::Table &table,
              int reps)
{
    using Clock = std::chrono::steady_clock;
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        auto start = Clock::now();
        auto result = analyzer.analyze(table);
        benchmark::DoNotOptimize(result.rootCauses.size());
        double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        if (i == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Per-stage timings of one FIM pass, read from the obs spans. */
struct FimTiming
{
    double totalMs = 0.0;  ///< Whole mine wall clock.
    double level1Ms = 0.0; ///< Level-1 histogram span.
    double levelkMs = 0.0; ///< Level-k counting span.
};

/**
 * Best-of-reps timing of one miner; `mine` selects the dictionary-id
 * path (Fim::mine) or the retained Value-comparing reference
 * (Fim::mineReference). Stage times come from the rca.fim.level1[_ref]
 * / rca.fim.levelk[_ref] spans — for the reference that excludes its
 * one-off column materialization, so the level-k ratio isolates the
 * encoding, not the decode.
 */
FimTiming
fimMillis(const rca::Fim &fim, const std::vector<bool> &flags, bool mine,
          int reps)
{
    using Clock = std::chrono::steady_clock;
    const char *l1 = mine ? "rca.fim.level1" : "rca.fim.level1_ref";
    const char *lk = mine ? "rca.fim.levelk" : "rca.fim.levelk_ref";
    FimTiming best;
    for (int i = 0; i < reps; ++i) {
        obs::Registry::global().reset();
        auto start = Clock::now();
        auto result = mine ? fim.mine(flags) : fim.mineReference(flags);
        double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        benchmark::DoNotOptimize(result.size());
        if (i == 0 || ms < best.totalMs) {
            auto snap = obs::Registry::global().snapshot();
            best.totalMs = ms;
            best.level1Ms = snap.histograms[l1].sum * 1000.0;
            best.levelkMs = snap.histograms[lk].sum * 1000.0;
        }
    }
    return best;
}

/** Thread sweep over the sharded RCA pipeline, reported as JSON. */
int
runThreadSweep(bool quick)
{
    const size_t rows = quick ? 20000 : 160000;
    const int reps = quick ? 2 : 3;
    driftlog::DriftLog log = makeLog(rows, 123);
    rca::RcaConfig config;
    config.attributeColumns =
        driftlog::DriftLog::defaultAttributeColumns();
    rca::Analyzer analyzer(config);

    struct Row
    {
        size_t threads;
        double millis;
    };
    std::vector<Row> results;
    for (size_t threads : {1u, 2u, 4u, 8u}) {
        runtime::setThreads(threads);
        results.push_back(
            Row{threads, analyzeMillis(analyzer, log.table(), reps)});
    }

    // Dictionary axis: the same FIM pass probing uint32 dictionary ids
    // (Fim::mine) vs the retained Value-comparing reference miner
    // (Fim::mineReference), single-threaded so the ratio isolates the
    // encoding and not the pool.
    runtime::setThreads(1);
    rca::Fim fim(log.table(), config);
    std::vector<bool> flags =
        rca::Fim::driftFlags(log.table(), config.driftColumn);
    FimTiming dict_on = fimMillis(fim, flags, true, reps);
    FimTiming dict_off = fimMillis(fim, flags, false, reps);
    runtime::setThreads(0);

    unsigned cores = std::thread::hardware_concurrency();
    std::printf("{\n");
    std::printf("  \"bench\": \"fig9d_rca_scaling\",\n");
    std::printf("  \"rows\": %zu,\n", rows);
    std::printf("  \"hardware_concurrency\": %u,\n", cores);
    std::printf("  %s,\n", bench::hostMetaJson().c_str());
    std::printf("  \"note\": \"%s\",\n",
                cores <= 1
                    ? "1-core machine: speedups ~1.0 expected; only "
                      "the determinism contract is measurable here"
                    : "speedup is analyze() wall clock vs the 1-thread "
                      "run of the same binary");
    std::printf("  \"results\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const Row &r = results[i];
        std::printf("    {\"threads\": %zu, \"analyze_ms\": %.2f, "
                    "\"speedup\": %.2f}%s\n",
                    r.threads, r.millis, results[0].millis / r.millis,
                    i + 1 < results.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"fim_dict_axis\": {\n");
    std::printf("    \"threads\": 1,\n");
    std::printf("    \"dict_on\": {\"mine_ms\": %.2f, "
                "\"level1_ms\": %.2f, \"levelk_ms\": %.2f},\n",
                dict_on.totalMs, dict_on.level1Ms, dict_on.levelkMs);
    std::printf("    \"dict_off\": {\"mine_ms\": %.2f, "
                "\"level1_ms\": %.2f, \"levelk_ms\": %.2f},\n",
                dict_off.totalMs, dict_off.level1Ms, dict_off.levelkMs);
    std::printf("    \"levelk_dict_speedup\": %.2f,\n",
                dict_on.levelkMs > 0.0
                    ? dict_off.levelkMs / dict_on.levelkMs
                    : 0.0);
    std::printf(
        "    \"note\": \"dict_off = Fim::mineReference, the retained "
        "Value-comparing miner over materialized columns; its stage "
        "spans start after the one-off decode, so levelk_dict_speedup "
        "isolates id probes vs Value probes\"\n");
    std::printf("  }\n}\n");
    return 0;
}

} // namespace

BENCHMARK(BM_RootCauseAnalysis)
    ->RangeMultiplier(2)
    ->Range(10000, 320000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

int
main(int argc, char **argv)
{
    bool sweep = false, quick = false;
    std::string metrics_out;
    // Consume our own flags (compacting argv) so benchmark::Initialize
    // only sees what it understands.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep") == 0)
            sweep = true;
        else if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0)
            metrics_out = argv[i] + 14;
        else
            argv[kept++] = argv[i];
    }
    argc = kept;
    int rc = 0;
    if (sweep) {
        rc = runThreadSweep(quick);
    } else {
        benchmark::Initialize(&argc, argv);
        if (benchmark::ReportUnrecognizedArguments(argc, argv))
            return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    if (!metrics_out.empty())
        nazar::obs::writeMetricsFile(metrics_out);
    return rc;
}
