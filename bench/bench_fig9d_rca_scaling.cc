/**
 * @file
 * Figure 9d: runtime of the root-cause analysis as a function of the
 * drift-log size (google-benchmark).
 *
 * Paper result: runtime is completely linear in the number of rows —
 * the FIM pass is linear and set reduction prunes the candidate set
 * before the counterfactual stage.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "driftlog/drift_log.h"
#include "rca/analyzer.h"

using namespace nazar;

namespace {

/** Build a synthetic drift log with fleet-realistic cardinalities. */
driftlog::DriftLog
makeLog(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    const char *weathers[] = {"clear-day", "rain", "snow", "fog"};
    const char *locations[] = {"new_york", "tibet", "beijing",
                               "new_south_wales", "united_kingdom",
                               "quebec", "sao_paulo"};
    driftlog::DriftLog log;
    for (size_t i = 0; i < rows; ++i) {
        driftlog::DriftLogEntry e;
        e.time = SimDate(static_cast<int>(i % 112));
        int device = static_cast<int>(rng.index(112));
        e.deviceId = "android_" + std::to_string(device);
        e.deviceModel = "model_" + std::to_string(device % 4);
        e.location = locations[rng.index(7)];
        size_t w = rng.index(4);
        e.weather = weathers[w];
        // Weather drifts are true causes; the rest is FP noise.
        e.drift = w != 0 ? rng.bernoulli(0.7) : rng.bernoulli(0.2);
        log.add(e);
    }
    return log;
}

void
BM_RootCauseAnalysis(benchmark::State &state)
{
    size_t rows = static_cast<size_t>(state.range(0));
    driftlog::DriftLog log = makeLog(rows, 123);
    rca::RcaConfig config;
    config.attributeColumns =
        driftlog::DriftLog::defaultAttributeColumns();
    rca::Analyzer analyzer(config);

    for (auto _ : state) {
        auto result = analyzer.analyze(log.table());
        benchmark::DoNotOptimize(result.rootCauses.size());
    }
    state.SetComplexityN(state.range(0));
    state.counters["rows"] = static_cast<double>(rows);
}

} // namespace

BENCHMARK(BM_RootCauseAnalysis)
    ->RangeMultiplier(2)
    ->Range(10000, 320000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

BENCHMARK_MAIN();
