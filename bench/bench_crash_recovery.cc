/**
 * @file
 * Crash-recovery benchmark: how fast the cloud reconstructs its state
 * from the durability directory as the WAL grows, and how snapshots
 * bound the replay work. Seeds BENCH_crash_recovery.json.
 *
 * Three experiments:
 *
 *  1. Snapshot-interval grid. For each (snapshotEvery, fullEvery) and
 *     each ingest count, a persisted cloud absorbs the scripted
 *     telemetry and is dropped WITHOUT a final checkpoint — exactly
 *     what a crash leaves behind — then recovery is timed over the
 *     directory. Headline: with snapshots on, recovery time and
 *     replayed-record count stay bounded by the snapshot interval
 *     instead of growing with history length.
 *
 *  2. Incremental vs full chains. fullEvery = 1 writes a full
 *     snapshot every time (the pre-chain behaviour); fullEvery = 8
 *     writes mostly deltas, which archive only the WAL records since
 *     the previous snapshot. Deltas trade a slightly longer recovery
 *     walk for much cheaper snapshot writes; dirBytes shows the
 *     on-disk footprint either way (GC keeps both bounded).
 *
 *  3. Disk-fault recovery. An injected mid-run fault (failed WAL
 *     fsync with dropped dirty pages / ENOSPC on append) latches the
 *     durability layer; the row reports how much was durable at the
 *     latch and how long recovery from the poisoned directory takes.
 *
 * Usage: bench_crash_recovery [--quick] [--metrics-out=<path>]
 *   --quick shrinks the ingest counts (CI smoke run).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "bench_util.h"
#include "persist/cloud_persist.h"
#include "persist/env.h"
#include "sim/cloud.h"

namespace {

using namespace nazar;
namespace fs = std::filesystem;

driftlog::DriftLogEntry
benchEntry(int i)
{
    driftlog::DriftLogEntry e;
    e.time = SimDate(i % 21, (i * 37) % 86400);
    int device = i % 16;
    e.deviceId = data::deviceName(device);
    e.deviceModel = data::deviceModel(device);
    e.location = "tibet";
    e.weather = i % 3 == 0 ? "snow" : "clear-day";
    e.drift = i % 3 == 0;
    return e;
}

sim::Upload
benchUpload(const data::AppSpec &app, int i)
{
    driftlog::DriftLogEntry e = benchEntry(i);
    sim::Upload up;
    Rng rng(static_cast<uint64_t>(4000 + i));
    int label = static_cast<int>(rng.index(app.domain.numClasses()));
    up.features = app.domain.sample(label, rng);
    up.context = rca::AttributeSet({
        {driftlog::columns::kWeather, driftlog::Value(e.weather)},
        {driftlog::columns::kLocation, driftlog::Value(e.location)},
        {driftlog::columns::kDeviceId, driftlog::Value(e.deviceId)},
        {driftlog::columns::kDeviceModel, driftlog::Value(e.deviceModel)},
    });
    up.driftFlag = e.drift;
    return up;
}

/** Total bytes across every file in the state directory. */
uint64_t
dirBytes(const fs::path &dir)
{
    uint64_t total = 0;
    if (!fs::exists(dir))
        return 0;
    for (const auto &ent : fs::directory_iterator(dir))
        if (ent.is_regular_file())
            total += ent.file_size();
    return total;
}

struct Row
{
    uint64_t snapshotEvery;
    uint64_t fullEvery;
    size_t ingests;
    uint64_t walBytes;
    uint64_t dirBytes;
    bool snapshotLoaded;
    uint64_t replayedRecords;
    double recoverMs;
};

struct FaultRow
{
    const char *site;
    const char *kind;
    size_t latchedAt; ///< Ingests applied before the latch.
    uint64_t durable; ///< totalIngested recovered from the directory.
    double recoverMs;
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    bench::MetricsExport metrics(argc, argv);
    bench::QuietLogs quiet;
    setLogLevel(LogLevel::kSilent);

    data::AppSpec app = data::makeAnimalsApp(13, 8);
    // Untrained base: the bench measures the durability layer, not
    // adaptation quality. minAdaptSamples is set high so cycles still
    // append kCycleCommit records but skip the (slow) fine-tuning.
    nn::Classifier base(nn::Architecture::kResNet18,
                        app.domain.featureDim(),
                        app.domain.numClasses(), 5);

    // (snapshotEvery, fullEvery): WAL-only, always-full chains, and
    // mostly-delta chains at two intervals.
    const std::vector<std::pair<uint64_t, uint64_t>> grid = {
        {0, 1}, {512, 1}, {512, 8}, {2048, 1}, {2048, 8}};
    const std::vector<size_t> counts =
        quick ? std::vector<size_t>{500, 2000}
              : std::vector<size_t>{500, 2000, 8000};
    const fs::path dir = fs::current_path() / "bench_crash_recovery_state";

    auto runIngests = [&](sim::Cloud &cloud, size_t count,
                          size_t start = 0) {
        nn::BnPatch clean = base.bnPatch();
        for (size_t i = start; i < count; ++i) {
            cloud.ingestFrom(static_cast<int>(i % 16),
                             static_cast<uint64_t>(i / 16),
                             benchEntry(static_cast<int>(i)),
                             benchUpload(app, static_cast<int>(i)));
            if ((i + 1) % 1000 == 0)
                cloud.runCycle(clean);
        }
    };

    std::vector<Row> rows;
    for (auto [interval, full_every] : grid) {
        for (size_t count : counts) {
            fs::remove_all(dir);
            {
                sim::CloudConfig config;
                config.minAdaptSamples = 1u << 30;
                config.persist.dir = dir.string();
                config.persist.snapshotEvery = interval;
                config.persist.fullEvery = full_every;
                sim::Cloud cloud(config, base);
                runIngests(cloud, count);
                // No checkpoint: the directory is left exactly as a
                // crash would leave it.
            }
            Row row;
            row.snapshotEvery = interval;
            row.fullEvery = full_every;
            row.ingests = count;
            row.walBytes = fs::exists(dir / "wal.log")
                               ? fs::file_size(dir / "wal.log")
                               : 0;
            row.dirBytes = dirBytes(dir);
            auto t0 = std::chrono::steady_clock::now();
            persist::RecoveredState st = persist::recoverDir(dir);
            auto t1 = std::chrono::steady_clock::now();
            row.snapshotLoaded = st.snapshotLoaded;
            row.replayedRecords = st.replayedRecords;
            row.recoverMs =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            rows.push_back(row);
        }
    }

    // Disk-fault recovery: latch mid-run, then time recovery from the
    // poisoned directory. env.wal.sync fires once per ingest on this
    // path, so the hit count is roughly the ingest index at the latch.
    const size_t fault_count = quick ? 1000 : 4000;
    const std::vector<std::pair<const char *, persist::FaultKind>>
        faults = {{"env.wal.sync", persist::FaultKind::kSyncFail},
                  {"env.wal.write", persist::FaultKind::kEnospc}};
    std::vector<FaultRow> fault_rows;
    for (auto [site, kind] : faults) {
        fs::remove_all(dir);
        size_t latched_at = 0;
        {
            sim::CloudConfig config;
            config.minAdaptSamples = 1u << 30;
            config.persist.dir = dir.string();
            config.persist.snapshotEvery = 512;
            config.persist.fault = {site, fault_count / 2, kind};
            sim::Cloud cloud(config, base);
            try {
                runIngests(cloud, fault_count);
                latched_at = fault_count;
            } catch (const persist::DiskFault &) {
                latched_at = cloud.totalIngested();
            }
        }
        FaultRow row;
        row.site = site;
        row.kind = persist::faultKindName(kind);
        row.latchedAt = latched_at;
        auto t0 = std::chrono::steady_clock::now();
        persist::RecoveredState st = persist::recoverDir(dir);
        auto t1 = std::chrono::steady_clock::now();
        row.durable = st.totalIngested;
        row.recoverMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        fault_rows.push_back(row);
    }
    fs::remove_all(dir);

    std::printf("{\n");
    std::printf("  \"bench\": \"crash_recovery\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  %s,\n", bench::hostMetaJson().c_str());
    std::printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"snapshotEvery\": %llu, \"fullEvery\": %llu, "
            "\"ingests\": %zu, \"walBytes\": %llu, \"dirBytes\": %llu, "
            "\"snapshotLoaded\": %s, \"replayedRecords\": %llu, "
            "\"recoverMs\": %.3f}%s\n",
            static_cast<unsigned long long>(r.snapshotEvery),
            static_cast<unsigned long long>(r.fullEvery), r.ingests,
            static_cast<unsigned long long>(r.walBytes),
            static_cast<unsigned long long>(r.dirBytes),
            r.snapshotLoaded ? "true" : "false",
            static_cast<unsigned long long>(r.replayedRecords),
            r.recoverMs, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"diskFaults\": [\n");
    for (size_t i = 0; i < fault_rows.size(); ++i) {
        const FaultRow &r = fault_rows[i];
        std::printf(
            "    {\"site\": \"%s\", \"kind\": \"%s\", "
            "\"latchedAt\": %zu, \"durable\": %llu, "
            "\"recoverMs\": %.3f}%s\n",
            r.site, r.kind, r.latchedAt,
            static_cast<unsigned long long>(r.durable), r.recoverMs,
            i + 1 < fault_rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
