/**
 * @file
 * Crash-recovery benchmark: how fast the cloud reconstructs its state
 * from the durability directory as the WAL grows, and how snapshots
 * bound the replay work. Seeds BENCH_crash_recovery.json.
 *
 * For each snapshot interval in {0 (WAL-only), 512, 2048} and each
 * ingest count, a cloud with persistence enabled absorbs the scripted
 * telemetry (entries + uploads over the idempotent ingest path, with
 * periodic analysis cycles) and is then dropped WITHOUT a final
 * checkpoint — exactly what a crash leaves behind. Recovery is then
 * timed over the resulting directory. The headline claim: with
 * snapshots on, recovery time and replayed-record count stay bounded
 * by the snapshot interval instead of growing with history length.
 *
 * Usage: bench_crash_recovery [--quick] [--metrics-out=<path>]
 *   --quick shrinks the ingest counts (CI smoke run).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "bench_util.h"
#include "persist/cloud_persist.h"
#include "sim/cloud.h"

namespace {

using namespace nazar;
namespace fs = std::filesystem;

driftlog::DriftLogEntry
benchEntry(int i)
{
    driftlog::DriftLogEntry e;
    e.time = SimDate(i % 21, (i * 37) % 86400);
    int device = i % 16;
    e.deviceId = data::deviceName(device);
    e.deviceModel = data::deviceModel(device);
    e.location = "tibet";
    e.weather = i % 3 == 0 ? "snow" : "clear-day";
    e.drift = i % 3 == 0;
    return e;
}

sim::Upload
benchUpload(const data::AppSpec &app, int i)
{
    driftlog::DriftLogEntry e = benchEntry(i);
    sim::Upload up;
    Rng rng(static_cast<uint64_t>(4000 + i));
    int label = static_cast<int>(rng.index(app.domain.numClasses()));
    up.features = app.domain.sample(label, rng);
    up.context = rca::AttributeSet({
        {driftlog::columns::kWeather, driftlog::Value(e.weather)},
        {driftlog::columns::kLocation, driftlog::Value(e.location)},
        {driftlog::columns::kDeviceId, driftlog::Value(e.deviceId)},
        {driftlog::columns::kDeviceModel, driftlog::Value(e.deviceModel)},
    });
    up.driftFlag = e.drift;
    return up;
}

struct Row
{
    uint64_t snapshotEvery;
    size_t ingests;
    uint64_t walBytes;
    bool snapshotLoaded;
    uint64_t replayedRecords;
    double recoverMs;
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    bench::MetricsExport metrics(argc, argv);
    bench::QuietLogs quiet;
    setLogLevel(LogLevel::kSilent);

    data::AppSpec app = data::makeAnimalsApp(13, 8);
    // Untrained base: the bench measures the durability layer, not
    // adaptation quality. minAdaptSamples is set high so cycles still
    // append kCycleCommit records but skip the (slow) fine-tuning.
    nn::Classifier base(nn::Architecture::kResNet18,
                        app.domain.featureDim(),
                        app.domain.numClasses(), 5);

    const std::vector<uint64_t> intervals = {0, 512, 2048};
    const std::vector<size_t> counts =
        quick ? std::vector<size_t>{500, 2000}
              : std::vector<size_t>{500, 2000, 8000};
    const fs::path dir = fs::current_path() / "bench_crash_recovery_state";

    std::vector<Row> rows;
    for (uint64_t interval : intervals) {
        for (size_t count : counts) {
            fs::remove_all(dir);
            {
                sim::CloudConfig config;
                config.minAdaptSamples = 1u << 30;
                config.persist.dir = dir.string();
                config.persist.snapshotEvery = interval;
                sim::Cloud cloud(config, base);
                nn::BnPatch clean = base.bnPatch();
                for (size_t i = 0; i < count; ++i) {
                    cloud.ingestFrom(
                        static_cast<int>(i % 16),
                        static_cast<uint64_t>(i / 16),
                        benchEntry(static_cast<int>(i)),
                        benchUpload(app, static_cast<int>(i)));
                    if ((i + 1) % 1000 == 0)
                        cloud.runCycle(clean);
                }
                // No checkpoint: the directory is left exactly as a
                // crash would leave it.
            }
            Row row;
            row.snapshotEvery = interval;
            row.ingests = count;
            row.walBytes = fs::exists(dir / "wal.log")
                               ? fs::file_size(dir / "wal.log")
                               : 0;
            auto t0 = std::chrono::steady_clock::now();
            persist::RecoveredState st = persist::recoverDir(dir);
            auto t1 = std::chrono::steady_clock::now();
            row.snapshotLoaded = st.snapshotLoaded;
            row.replayedRecords = st.replayedRecords;
            row.recoverMs =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            rows.push_back(row);
        }
    }
    fs::remove_all(dir);

    std::printf("{\n");
    std::printf("  \"bench\": \"crash_recovery\",\n");
    std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
    std::printf("  %s,\n", bench::hostMetaJson().c_str());
    std::printf("  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"snapshotEvery\": %llu, \"ingests\": %zu, "
            "\"walBytes\": %llu, \"snapshotLoaded\": %s, "
            "\"replayedRecords\": %llu, \"recoverMs\": %.3f}%s\n",
            static_cast<unsigned long long>(r.snapshotEvery), r.ingests,
            static_cast<unsigned long long>(r.walBytes),
            r.snapshotLoaded ? "true" : "false",
            static_cast<unsigned long long>(r.replayedRecords),
            r.recoverMs, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
}
