/**
 * @file
 * Shared helpers for the benchmark harness. Every bench binary
 * regenerates one table or figure of the paper's evaluation and prints
 * paper-vs-measured rows.
 */
#ifndef NAZAR_BENCH_BENCH_UTIL_H
#define NAZAR_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/export.h"
#include "obs/span.h"
#include "data/apps.h"
#include "data/stream.h"
#include "runtime/thread_pool.h"
#include "sim/runner.h"
#include "data/corruption.h"
#include "nn/classifier.h"

namespace nazar::bench {

/** Print the standard experiment banner. */
inline void
printHeader(const std::string &id, const std::string &title)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s — %s\n", id.c_str(), title.c_str());
    std::printf("==================================================="
                "===========\n");
}

/** Print the expectation from the paper for easy comparison. */
inline void
printPaperNote(const std::string &note)
{
    std::printf("paper: %s\n\n", note.c_str());
}

/** Train a base classifier for an app (clean data). */
inline nn::Classifier
trainBase(const data::AppSpec &app,
          nn::Architecture arch = nn::Architecture::kResNet50,
          uint64_t seed = 5, int epochs = 40)
{
    Rng rng(seed);
    auto train = app.domain.makeBalancedDataset(app.trainPerClass, rng);
    nn::Classifier model(arch, app.domain.featureDim(),
                         app.domain.numClasses(), seed);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    model.trainSupervised(train.x, train.labels, tc);
    return model;
}

/** How held-out severities are drawn for a partition set. */
enum class SeverityMode {
    kFixed,  ///< Every sample at the given severity (setting (a)).
    kNormal, ///< round(clip(N(severity, 1), 0, 5)) (setting (b)).
};

/** One by-cause data partition (paper §5.5): 16 drifts + clean. */
struct Partition
{
    data::CorruptionType type; ///< kNone for the clean partition.
    data::Dataset adaptSet;    ///< Data the model adapts on.
    data::Dataset testSet;     ///< Held-out data of the same cause.
};

/**
 * Build the 17 partitions of §5.5: one per corruption type plus a
 * clean one. Adaptation sets always use the fixed severity; test sets
 * follow @p test_mode.
 */
inline std::vector<Partition>
makePartitions(const data::AppSpec &app, size_t per_class_adapt,
               size_t per_class_test, int severity,
               SeverityMode test_mode, uint64_t seed)
{
    Rng rng(seed);
    data::Corruptor corruptor(app.domain.featureDim());

    auto corrupt_set = [&](const data::Dataset &src,
                           data::CorruptionType type, bool vary) {
        if (type == data::CorruptionType::kNone)
            return src;
        data::DatasetBuilder builder;
        for (size_t r = 0; r < src.x.rows(); ++r) {
            int s = severity;
            if (vary) {
                double raw = rng.normal(static_cast<double>(severity),
                                        1.0);
                s = static_cast<int>(
                    std::lround(std::clamp(raw, 0.0, 5.0)));
            }
            builder.add(corruptor.apply(src.x.rowVec(r), type, s, rng),
                        src.labels[r]);
        }
        return builder.build();
    };

    std::vector<Partition> partitions;
    std::vector<data::CorruptionType> types = data::allCorruptionTypes();
    types.push_back(data::CorruptionType::kNone); // the clean partition
    for (data::CorruptionType type : types) {
        Partition p;
        p.type = type;
        auto adapt_src =
            app.domain.makeBalancedDataset(per_class_adapt, rng);
        auto test_src =
            app.domain.makeBalancedDataset(per_class_test, rng);
        p.adaptSet = corrupt_set(adapt_src, type, /*vary=*/false);
        p.testSet = corrupt_set(test_src, type,
                                test_mode == SeverityMode::kNormal);
        partitions.push_back(std::move(p));
    }
    return partitions;
}

/** Results of running the three strategies over one workload. */
struct StrategyOutcomes
{
    sim::RunResult nazar;
    sim::RunResult adaptAll;
    sim::RunResult noAdapt;
};

/**
 * Run Nazar, adapt-all and no-adapt over the same workload with a
 * shared pretrained base model.
 */
inline StrategyOutcomes
runStrategies(const data::AppSpec &app, const data::WeatherModel &weather,
              sim::RunnerConfig config, const nn::Classifier &base)
{
    StrategyOutcomes out;
    config.strategy = sim::Strategy::kNazar;
    out.nazar = sim::Runner(app, weather, config, &base).run();
    config.strategy = sim::Strategy::kAdaptAll;
    out.adaptAll = sim::Runner(app, weather, config, &base).run();
    config.strategy = sim::Strategy::kNoAdapt;
    out.noAdapt = sim::Runner(app, weather, config, &base).run();
    return out;
}

/** RAII: silence library logging for the duration of a bench. */
struct QuietLogs
{
    QuietLogs() { setLogLevel(LogLevel::kWarn); }
    ~QuietLogs() { setLogLevel(LogLevel::kInfo); }
};

/**
 * RAII: honor a `--metrics-out=<path>` flag. Construct at the top of
 * main(); at scope exit the obs registry snapshot is written to the
 * given path (JSON by default, Prometheus text for .prom/.txt). With
 * no flag on the command line this is a no-op.
 */
struct MetricsExport
{
    std::string path;

    MetricsExport(int argc, char **argv)
    {
        const std::string flag = "--metrics-out=";
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind(flag, 0) == 0)
                path = arg.substr(flag.size());
        }
    }

    ~MetricsExport()
    {
        if (path.empty())
            return;
        try {
            obs::writeMetricsFile(path);
            std::printf("metrics snapshot: %s\n", path.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "metrics export failed: %s\n",
                         e.what());
        }
    }
};

/**
 * RAII: honor a `--trace-out=<path>` flag. When present, causal
 * tracing is switched on for the bench's lifetime and the trace rings
 * are written as Chrome trace_event JSON (Perfetto-loadable) at scope
 * exit. With no flag this is a no-op and tracing stays off.
 */
struct TraceExport
{
    std::string path;

    TraceExport(int argc, char **argv)
    {
        const std::string flag = "--trace-out=";
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind(flag, 0) == 0)
                path = arg.substr(flag.size());
        }
        if (!path.empty()) {
            obs::setTracing(true);
            obs::setThreadName("main");
        }
    }

    ~TraceExport()
    {
        if (path.empty())
            return;
        try {
            obs::writeTraceFile(path);
            // stderr: a bench's stdout may be one pure JSON document.
            std::fprintf(stderr,
                         "trace: %zu events (%zu dropped) -> %s\n",
                         obs::traceEvents().size(), obs::traceDropped(),
                         path.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "trace export failed: %s\n",
                         e.what());
        }
    }
};

/**
 * JSON fragment describing the machine a bench ran on, so a committed
 * artifact (e.g. a 1-core container's scaling numbers) is
 * self-describing. Emit inside the top-level object:
 *
 *   "host": {"cores": 8, "nazarThreadsEnv": "4", "threads": 4
 *            [, "syncMode": "fdatasync"]},
 */
inline std::string
hostMetaJson(const std::string &sync_mode = "")
{
    std::ostringstream os;
    os << "\"host\": {\"cores\": "
       << std::thread::hardware_concurrency();
    const char *env = std::getenv("NAZAR_THREADS");
    os << ", \"nazarThreadsEnv\": ";
    if (env != nullptr)
        os << "\"" << env << "\"";
    else
        os << "null";
    os << ", \"threads\": " << runtime::configuredThreads();
    if (!sync_mode.empty())
        os << ", \"syncMode\": \"" << sync_mode << "\"";
    os << "}";
    return os.str();
}

} // namespace nazar::bench

#endif // NAZAR_BENCH_BENCH_UTIL_H
