/**
 * @file
 * Ablation: continuous clean-model recalibration (§3.4: "a
 * continuously adapted 'clean' model should be run on clean data").
 *
 * Nazar keeps the clean model calibrated with TENT on non-drifted,
 * cause-free uploads. This ablation toggles that behaviour.
 * Expectation: recalibration mainly protects clean-data accuracy and
 * keeps the detector's false-positive floor stable across windows.
 */
#include "bench_util.h"

#include "common/table_printer.h"

using namespace nazar;

int
main()
{
    bench::QuietLogs quiet;
    bench::printHeader("Ablation", "clean-model recalibration on/off");
    bench::printPaperNote("§3.4 prescribes a continuously adapted "
                          "clean model for clean data");

    data::AppSpec app = data::makeCityscapesApp();
    data::WeatherModel weather(app.locations, kSimPeriodDays, 2020);
    nn::Classifier base =
        bench::trainBase(app, nn::Architecture::kResNet18);

    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 8;
    config.workload.days = kSimPeriodDays;
    config.workload.seed = 77;
    config.seed = 78;

    TablePrinter t({"clean recalibration", "accuracy (all)",
                    "accuracy (clean)", "accuracy (drifted)",
                    "mean detection rate"});
    for (bool enabled : {true, false}) {
        config.cloud.adaptCleanModel = enabled;
        sim::RunResult r =
            sim::Runner(app, weather, config, &base).run();
        double clean_correct = 0.0, clean_total = 0.0, rate = 0.0;
        for (const auto &w : r.windows) {
            clean_correct += static_cast<double>(w.correctClean);
            clean_total +=
                static_cast<double>(w.events - w.driftedEvents);
            rate += w.detectionRate();
        }
        t.addRow({enabled ? "on" : "off",
                  TablePrinter::pct(r.avgAccuracyAll()),
                  TablePrinter::pct(clean_total
                                        ? clean_correct / clean_total
                                        : 0.0),
                  TablePrinter::pct(r.avgAccuracyDrifted()),
                  TablePrinter::num(
                      rate / static_cast<double>(r.windows.size()),
                      2)});
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}
